//! Dependence graph over a straight-line block.

use hirata_isa::{Inst, Reg};

/// How memory dependences are disambiguated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasModel {
    /// Any two memory operations where at least one writes are ordered.
    Conservative,
    /// Accesses through the same base register with different constant
    /// offsets are independent; accesses through different base
    /// registers are independent (the usual kernel-compiler assumption
    /// for disjoint arrays). Same base and same offset conflict.
    BaseOffset,
}

/// A register/memory dependence graph. Edge `a -> b` means `b` must
/// issue at least `latency(a, b)` cycles after `a`.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// `succs[i]` lists `(j, min_separation)` pairs.
    succs: Vec<Vec<(usize, u32)>>,
    /// Number of unscheduled predecessors per node (for ready lists).
    npreds: Vec<usize>,
    /// Longest path (in cycles) from each node to the block exit.
    height: Vec<u64>,
}

fn mem_conflict(a: &Inst, b: &Inst, alias: AliasModel) -> bool {
    let (a_mem, b_mem) = (a.is_mem(), b.is_mem());
    if !a_mem || !b_mem {
        return false;
    }
    let a_store = matches!(a, Inst::Store { .. });
    let b_store = matches!(b, Inst::Store { .. });
    if !a_store && !b_store {
        return false; // load-load never conflicts
    }
    match alias {
        AliasModel::Conservative => true,
        AliasModel::BaseOffset => {
            let key = |i: &Inst| match *i {
                Inst::Load { base, off, .. } => (base, off),
                Inst::Store { base, off, .. } => (base, off),
                _ => unreachable!("is_mem guarantees load/store"),
            };
            key(a) == key(b)
        }
    }
}

impl DepGraph {
    /// Builds the graph for `block`.
    ///
    /// RAW edges carry `result latency + 1` (the §2.1.2 scoreboard
    /// separation); WAR, WAW and memory-order edges carry 1 (issue
    /// order suffices on this machine: operands are captured at issue
    /// and same-unit operations execute in issue order).
    ///
    /// Decode-unit instructions (branches, thread control) must not
    /// appear in a schedulable block and are given edges to and from
    /// every other instruction, pinning them in place.
    pub fn build(block: &[Inst], alias: AliasModel) -> Self {
        let n = block.len();
        let mut succs = vec![Vec::new(); n];
        let mut npreds = vec![0usize; n];
        let add_edge = |succs: &mut Vec<Vec<(usize, u32)>>,
                        npreds: &mut Vec<usize>,
                        from: usize,
                        to: usize,
                        lat: u32| {
            if let Some(entry) = succs[from].iter_mut().find(|(t, _)| *t == to) {
                entry.1 = entry.1.max(lat);
                return;
            }
            succs[from].push((to, lat));
            npreds[to] += 1;
        };

        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (&block[i], &block[j]);
                let mut lat: Option<u32> = None;
                // Pinned: decode-unit ops keep their position entirely.
                if a.fu_class().is_none() || b.fu_class().is_none() {
                    lat = Some(1);
                }
                // RAW: b reads what a writes.
                if let Some(d) = a.dest() {
                    if b.srcs().into_iter().flatten().any(|r: Reg| r == d) {
                        lat = Some(lat.unwrap_or(0).max(a.result_latency() + 1));
                    }
                    // WAW
                    if b.dest() == Some(d) {
                        lat = Some(lat.unwrap_or(0).max(1));
                    }
                }
                // WAR: b writes what a reads.
                if let Some(d) = b.dest() {
                    if a.srcs().into_iter().flatten().any(|r: Reg| r == d) {
                        lat = Some(lat.unwrap_or(0).max(1));
                    }
                }
                if mem_conflict(a, b, alias) {
                    lat = Some(lat.unwrap_or(0).max(1));
                }
                if let Some(lat) = lat {
                    add_edge(&mut succs, &mut npreds, i, j, lat);
                }
            }
        }

        // Height = critical-path distance to exit, the list-scheduling
        // priority.
        let mut height = vec![0u64; n];
        for i in (0..n).rev() {
            let mut h = block[i].result_latency() as u64;
            for &(j, lat) in &succs[i] {
                h = h.max(lat as u64 + height[j]);
            }
            height[i] = h;
        }
        DepGraph { succs, npreds, height }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True if the block was empty.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successors of node `i` with their minimum issue separations.
    pub fn succs(&self, i: usize) -> &[(usize, u32)] {
        &self.succs[i]
    }

    /// Number of predecessors of node `i`.
    pub fn pred_count(&self, i: usize) -> usize {
        self.npreds[i]
    }

    /// Critical-path height of node `i` (cycles to block exit).
    pub fn height(&self, i: usize) -> u64 {
        self.height[i]
    }

    /// Verifies that `order` (a permutation of node indices) respects
    /// every edge; used by tests and debug assertions.
    pub fn respects(&self, order: &[usize]) -> bool {
        let mut pos = vec![usize::MAX; self.len()];
        for (p, &i) in order.iter().enumerate() {
            if i >= self.len() || pos[i] != usize::MAX {
                return false;
            }
            pos[i] = p;
        }
        if pos.contains(&usize::MAX) {
            return false;
        }
        (0..self.len()).all(|i| self.succs[i].iter().all(|&(j, _)| pos[i] < pos[j]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_isa::{GReg, GSrc, IntOp};

    fn load(rd: u8, base: u8, off: i64) -> Inst {
        Inst::Load { dst: Reg::G(GReg(rd)), base: GReg(base), off }
    }

    fn store(rs: u8, base: u8, off: i64) -> Inst {
        Inst::Store { src: Reg::G(GReg(rs)), base: GReg(base), off, gated: false }
    }

    fn add(rd: u8, rs: u8, rt: u8) -> Inst {
        Inst::IntOp { op: IntOp::Add, rd: GReg(rd), rs: GReg(rs), src2: GSrc::Reg(GReg(rt)) }
    }

    #[test]
    fn raw_edge_carries_scoreboard_separation() {
        let block = vec![load(1, 10, 0), add(2, 1, 1)];
        let g = DepGraph::build(&block, AliasModel::BaseOffset);
        assert_eq!(g.succs(0), &[(1, 5)]); // load result 4 -> 5
        assert_eq!(g.pred_count(1), 1);
    }

    #[test]
    fn war_and_waw_edges_order_by_one() {
        let block = vec![add(2, 1, 1), add(1, 3, 3), add(1, 4, 4)];
        let g = DepGraph::build(&block, AliasModel::BaseOffset);
        // WAR from the read of r1 to both later writers of r1.
        assert_eq!(g.succs(0), &[(1, 1), (2, 1)]);
        assert!(g.succs(1).contains(&(2, 1))); // WAW on r1
    }

    #[test]
    fn independent_loads_have_no_edges() {
        let block = vec![load(1, 10, 0), load(2, 10, 1), load(3, 11, 0)];
        let g = DepGraph::build(&block, AliasModel::BaseOffset);
        for i in 0..3 {
            assert!(g.succs(i).is_empty());
        }
    }

    #[test]
    fn store_load_disambiguation_depends_on_model() {
        let block = vec![store(1, 10, 0), load(2, 10, 1), load(3, 10, 0)];
        let strict = DepGraph::build(&block, AliasModel::Conservative);
        assert_eq!(strict.succs(0).len(), 2);
        let relaxed = DepGraph::build(&block, AliasModel::BaseOffset);
        assert_eq!(relaxed.succs(0), &[(2, 1)]); // only the same-slot load
    }

    #[test]
    fn heights_are_critical_path_distances() {
        // load (4) -> add (2) -> add (2): heights 5+3+... from the top.
        let block = vec![load(1, 10, 0), add(2, 1, 1), add(3, 2, 2)];
        let g = DepGraph::build(&block, AliasModel::BaseOffset);
        assert_eq!(g.height(2), 2);
        assert_eq!(g.height(1), 3 + 2);
        assert_eq!(g.height(0), 5 + 3 + 2);
    }

    #[test]
    fn respects_detects_violations() {
        let block = vec![load(1, 10, 0), add(2, 1, 1)];
        let g = DepGraph::build(&block, AliasModel::BaseOffset);
        assert!(g.respects(&[0, 1]));
        assert!(!g.respects(&[1, 0]));
        assert!(!g.respects(&[0, 0]));
        assert!(!g.respects(&[0]));
    }

    #[test]
    fn decode_ops_are_pinned() {
        let block = vec![add(1, 2, 2), Inst::Nop, add(3, 4, 4)];
        let g = DepGraph::build(&block, AliasModel::BaseOffset);
        assert!(g.succs(0).contains(&(1, 1)));
        assert!(g.succs(1).contains(&(2, 1)));
    }
}
