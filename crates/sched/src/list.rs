//! Strategy A: simple list scheduling (§2.3.2).
//!
//! "The compiler reorders the code without consideration of other
//! threads, and concentrates on shortening the processing time for
//! each thread." Priority is critical-path height; one instruction
//! issues per cycle (the machine's D = 1).

use hirata_isa::Inst;

use crate::depgraph::{AliasModel, DepGraph};

/// Core list scheduler: returns the chosen node order and the issue
/// slot assigned to each position.
fn schedule_order(block: &[Inst], alias: AliasModel) -> (Vec<usize>, u64) {
    let g = DepGraph::build(block, alias);
    let n = block.len();
    let mut remaining: Vec<usize> = (0..n).map(|i| g.pred_count(i)).collect();
    let mut earliest = vec![0u64; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut makespan = 0u64;
    let mut t = 0u64;
    while order.len() < n {
        // Candidates whose operands are ready this cycle; highest
        // critical path first, original order as the tie-break.
        let pick = ready
            .iter()
            .copied()
            .filter(|&i| earliest[i] <= t)
            .max_by(|&a, &b| g.height(a).cmp(&g.height(b)).then(b.cmp(&a)));
        let Some(i) = pick else {
            // Nothing ready: hop to the next time anything becomes so.
            t = ready.iter().map(|&i| earliest[i]).min().unwrap_or(t + 1).max(t + 1);
            continue;
        };
        ready.retain(|&x| x != i);
        order.push(i);
        makespan = makespan.max(t + block[i].result_latency() as u64);
        for &(j, lat) in g.succs(i) {
            earliest[j] = earliest[j].max(t + lat as u64);
            remaining[j] -= 1;
            if remaining[j] == 0 {
                ready.push(j);
            }
        }
        t += 1;
    }
    debug_assert!(g.respects(&order));
    (order, makespan)
}

/// Reorders `block` by list scheduling (strategy A of §2.3.2),
/// preserving all dependences of [`DepGraph`].
///
/// # Examples
///
/// ```
/// use hirata_isa::{GReg, GSrc, Inst, IntOp, Reg};
/// use hirata_sched::{list_schedule, AliasModel};
///
/// let block = vec![
///     Inst::Load { dst: Reg::G(GReg(1)), base: GReg(9), off: 0 },
///     Inst::IntOp { op: IntOp::Add, rd: GReg(2), rs: GReg(1), src2: GSrc::Imm(1) },
///     Inst::Li { rd: GReg(3), imm: 9 },
/// ];
/// let out = list_schedule(&block, AliasModel::BaseOffset);
/// assert_eq!(out.len(), 3);
/// // The independent li fills the load-use gap.
/// assert_eq!(out[1], block[2]);
/// ```
pub fn list_schedule(block: &[Inst], alias: AliasModel) -> Vec<Inst> {
    let (order, _) = schedule_order(block, alias);
    order.into_iter().map(|i| block[i]).collect()
}

/// Estimated single-thread makespan (cycles from first issue to last
/// result) of the list schedule for `block` — the compiler-side cost
/// model used to compare schedules in tests.
pub fn schedule_length(block: &[Inst], alias: AliasModel) -> u64 {
    if block.is_empty() {
        return 0;
    }
    let (_, makespan) = schedule_order(block, alias);
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_isa::{GReg, GSrc, IntOp, Reg};

    fn load(rd: u8, base: u8, off: i64) -> Inst {
        Inst::Load { dst: Reg::G(GReg(rd)), base: GReg(base), off }
    }

    fn add(rd: u8, rs: u8, rt: u8) -> Inst {
        Inst::IntOp { op: IntOp::Add, rd: GReg(rd), rs: GReg(rs), src2: GSrc::Reg(GReg(rt)) }
    }

    #[test]
    fn fills_load_use_gaps_with_independent_work() {
        let block = vec![
            load(1, 10, 0),
            add(2, 1, 1),   // depends on the load
            load(3, 10, 1), // independent
            load(4, 10, 2), // independent
        ];
        let out = list_schedule(&block, AliasModel::BaseOffset);
        // The dependent add must come last.
        assert_eq!(out[3], block[1]);
    }

    #[test]
    fn preserves_dependences() {
        let block = vec![load(1, 10, 0), add(2, 1, 1), add(3, 2, 2), add(1, 5, 5)];
        let out = list_schedule(&block, AliasModel::BaseOffset);
        let g = DepGraph::build(&block, AliasModel::BaseOffset);
        let order: Vec<usize> =
            out.iter().map(|inst| block.iter().position(|b| b == inst).unwrap()).collect();
        // Position lookup is ambiguous for duplicate instructions; this
        // block has none.
        assert!(g.respects(&order));
    }

    #[test]
    fn shortens_makespan_versus_program_order() {
        // Program order: load, use, load, use — 12+ cycles of stalls.
        let naive = vec![load(1, 10, 0), add(2, 1, 1), load(3, 10, 1), add(4, 3, 3)];
        let scheduled = list_schedule(&naive, AliasModel::BaseOffset);
        assert!(
            schedule_length(&scheduled, AliasModel::BaseOffset)
                <= schedule_length(&naive, AliasModel::BaseOffset)
        );
        // And pairwise: the two loads front-load.
        assert!(matches!(scheduled[1], Inst::Load { .. }));
    }

    #[test]
    fn empty_and_singleton_blocks() {
        assert!(list_schedule(&[], AliasModel::BaseOffset).is_empty());
        assert_eq!(schedule_length(&[], AliasModel::BaseOffset), 0);
        let one = vec![add(1, 2, 3)];
        assert_eq!(list_schedule(&one, AliasModel::BaseOffset), one);
        assert_eq!(schedule_length(&one, AliasModel::BaseOffset), 2);
    }

    #[test]
    fn output_is_a_permutation() {
        let block = vec![load(1, 10, 0), add(2, 1, 1), load(3, 11, 0), add(4, 3, 3), add(5, 2, 4)];
        let mut out = list_schedule(&block, AliasModel::BaseOffset);
        let mut expect = block.clone();
        let key = |i: &Inst| format!("{i}");
        out.sort_by_key(key);
        expect.sort_by_key(key);
        assert_eq!(out, expect);
    }
}
