//! The shipped sample programs under `examples/asm/` must assemble and
//! run through the CLI.

use hirata_cli::{execute, read_file};

fn sample(name: &str) -> String {
    format!("{}/../../examples/asm/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[test]
fn fib_runs_and_dumps_the_sequence() {
    let out = execute(&args(&["run", &sample("fib.s"), "--base", "--dump", "100..108"]), read_file)
        .unwrap();
    for fib in [0i64, 1, 1, 2, 3, 5, 8, 13] {
        assert!(out.contains(&format!("i64 {fib} ")), "fib {fib} missing:\n{out}");
    }
}

#[test]
fn saxpy_runs_on_four_slots() {
    let out = execute(
        &args(&["run", &sample("saxpy.s"), "--slots", "4", "--dump", "3000..3002"]),
        read_file,
    )
    .unwrap();
    // y[1] = 2.5 * 0.25 + 0 = 0.625
    assert!(out.contains("0.625"), "{out}");
}

#[test]
fn ring_token_crosses_every_slot_twice() {
    let out = execute(
        &args(&["run", &sample("ring_token.s"), "--slots", "4", "--dump", "100..101"]),
        read_file,
    )
    .unwrap();
    // 4 slots x 2 laps = token incremented 8 times.
    assert!(out.contains("i64 8 "), "{out}");
}

#[test]
fn timeline_renders_a_grid() {
    let out = execute(
        &args(&["run", &sample("fib.s"), "--timeline", "--max-cycles", "100000"]),
        read_file,
    )
    .unwrap();
    assert!(out.contains("cycle     s0"), "{out}");
    assert!(out.contains("@0"), "{out}");
}

#[test]
fn every_sample_checks_clean() {
    for name in ["fib.s", "saxpy.s", "ring_token.s"] {
        let out = execute(&args(&["check", &sample(name)]), read_file).unwrap();
        assert!(out.contains(": ok ("), "{name}: {out}");
    }
}

#[test]
fn emulator_subcommand_runs_samples() {
    let out = execute(&args(&["emu", &sample("fib.s"), "--dump", "105..106"]), read_file).unwrap();
    assert!(out.contains("instructions:"), "{out}");
    assert!(out.contains("i64 5 "), "fib(5)=5: {out}");
}

#[test]
fn emulator_and_machine_agree_on_saxpy() {
    let run_out = execute(
        &args(&["run", &sample("saxpy.s"), "--slots", "4", "--dump", "3000..3064"]),
        read_file,
    )
    .unwrap();
    let emu_out = execute(
        &args(&["emu", &sample("saxpy.s"), "--slots", "4", "--dump", "3000..3064"]),
        read_file,
    )
    .unwrap();
    let tail = |s: &str| {
        s.lines().filter(|l| l.trim_start().starts_with('[')).map(str::to_owned).collect::<Vec<_>>()
    };
    assert_eq!(tail(&run_out), tail(&emu_out));
}
