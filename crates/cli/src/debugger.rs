//! `hirata debug` — a scriptable single-step debugger for the
//! simulated machine.
//!
//! Commands (one per line; from stdin interactively, or from any
//! reader in tests):
//!
//! ```text
//! s [n]        step n cycles (default 1)
//! c            continue until a breakpoint, completion, or the limit
//! b <pc>       toggle a breakpoint on issue of instruction <pc>
//! r <ctx>      print general registers of context frame <ctx>
//! f <ctx>      print floating registers of context frame <ctx>
//! m <a> <b>    print data-memory words [a, b)
//! i            machine state: cycle, slots, priorities, queues
//! q            quit
//! ```

use std::fmt::Write as _;

use hirata_isa::{FReg, GReg, Program};
use hirata_sim::{Config, Machine};

use crate::CliError;

/// Runs the debugger loop, reading commands from `input` and returning
/// everything that would have been printed.
///
/// # Errors
///
/// Machine checks surface as [`CliError::Failure`]; malformed commands
/// are reported inline and do not abort the session.
pub fn debug_session(config: Config, program: &Program, input: &str) -> Result<String, CliError> {
    // Single-stepping must be cycle-exact: `s 1` means one cycle, not
    // "one step call that may fast-forward over a stalled span" — so
    // the debugger always runs the plain loop.
    let mut machine = Machine::new(config.with_fast_forward(false), program)
        .map_err(|e| CliError::Failure(e.to_string()))?;
    machine.set_trace(true);
    let mut out = String::new();
    let mut breakpoints: Vec<u32> = Vec::new();
    let mut seen_events = 0usize;
    let mut done = false;

    let step_cycles = |machine: &mut Machine,
                       n: u64,
                       breakpoints: &[u32],
                       seen: &mut usize,
                       out: &mut String|
     -> Result<bool, CliError> {
        for _ in 0..n {
            let finished = machine.step().map_err(|e| CliError::Failure(e.to_string()))?;
            let trace = machine.trace();
            while *seen < trace.len() {
                let e = trace[*seen];
                *seen += 1;
                if breakpoints.contains(&e.pc) {
                    let _ = writeln!(
                        out,
                        "breakpoint: slot {} issued @{} `{}` at cycle {}",
                        e.slot, e.pc, program.insts[e.pc as usize], e.cycle
                    );
                    return Ok(finished);
                }
            }
            if finished {
                let _ = writeln!(out, "machine finished at cycle {}", machine.cycles());
                return Ok(true);
            }
        }
        Ok(false)
    };

    let _ =
        writeln!(out, "debugging {} instructions; type `i` for state, `q` to quit", program.len());
    for raw in input.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let cmd = parts.next().expect("non-empty line");
        match cmd {
            "q" => break,
            "s" => {
                let n: u64 = parts.next().and_then(|t| t.parse().ok()).unwrap_or(1);
                if !done {
                    done = step_cycles(&mut machine, n, &breakpoints, &mut seen_events, &mut out)?;
                }
                let _ = writeln!(out, "cycle {}", machine.cycles());
            }
            "c" => {
                // Bounded "continue": the watchdog still protects us.
                while !done {
                    let before = out.len();
                    done = step_cycles(
                        &mut machine,
                        10_000,
                        &breakpoints,
                        &mut seen_events,
                        &mut out,
                    )?;
                    if out.len() != before {
                        break; // hit a breakpoint or finished
                    }
                }
            }
            "b" => match parts.next().and_then(|t| t.parse::<u32>().ok()) {
                Some(pc) if (pc as usize) < program.len() => {
                    if let Some(i) = breakpoints.iter().position(|&b| b == pc) {
                        breakpoints.remove(i);
                        let _ = writeln!(out, "breakpoint removed at @{pc}");
                    } else {
                        breakpoints.push(pc);
                        let _ = writeln!(
                            out,
                            "breakpoint set at @{pc} `{}`",
                            program.insts[pc as usize]
                        );
                    }
                }
                _ => {
                    let _ = writeln!(out, "usage: b <pc> (0..{})", program.len());
                }
            },
            "r" | "f" => {
                let ctx: usize = parts.next().and_then(|t| t.parse().ok()).unwrap_or(0);
                if cmd == "r" {
                    for n in (0..32).step_by(4) {
                        let _ = writeln!(
                            out,
                            "r{n:<2} {:>20} r{:<2} {:>20} r{:<2} {:>20} r{:<2} {:>20}",
                            machine.reg_g(ctx, GReg(n)),
                            n + 1,
                            machine.reg_g(ctx, GReg(n + 1)),
                            n + 2,
                            machine.reg_g(ctx, GReg(n + 2)),
                            n + 3,
                            machine.reg_g(ctx, GReg(n + 3)),
                        );
                    }
                } else {
                    for n in (0..32).step_by(4) {
                        let _ = writeln!(
                            out,
                            "f{n:<2} {:>18} f{:<2} {:>18} f{:<2} {:>18} f{:<2} {:>18}",
                            machine.reg_f(ctx, FReg(n)),
                            n + 1,
                            machine.reg_f(ctx, FReg(n + 1)),
                            n + 2,
                            machine.reg_f(ctx, FReg(n + 2)),
                            n + 3,
                            machine.reg_f(ctx, FReg(n + 3)),
                        );
                    }
                }
            }
            "m" => {
                let a: Option<u64> = parts.next().and_then(|t| t.parse().ok());
                let b: Option<u64> = parts.next().and_then(|t| t.parse().ok());
                match (a, b) {
                    (Some(a), Some(b)) if b >= a => {
                        for addr in a..b {
                            match machine.memory().read(addr) {
                                Ok(bits) => {
                                    let _ = writeln!(
                                        out,
                                        "[{addr:>6}] i64 {:<20} f64 {}",
                                        bits as i64,
                                        f64::from_bits(bits)
                                    );
                                }
                                Err(e) => {
                                    let _ = writeln!(out, "[{addr:>6}] {e}");
                                    break;
                                }
                            }
                        }
                    }
                    _ => {
                        let _ = writeln!(out, "usage: m <a> <b>");
                    }
                }
            }
            "i" => {
                let _ = writeln!(out, "cycle {}", machine.cycles());
                let _ = writeln!(out, "priority order {:?}", machine.priority_order());
                let _ = writeln!(out, "queue depths   {:?}", machine.queue_depths());
                for s in 0..machine.thread_slots() {
                    let v = machine.slot_view(s);
                    let _ = writeln!(
                        out,
                        "slot {s}: ctx {:?} lpid {:?} next-pc {:?} window {} standby {}",
                        v.context, v.lpid, v.next_pc, v.window_len, v.standby_occupancy
                    );
                }
            }
            other => {
                let _ = writeln!(out, "unknown command `{other}` (s/c/b/r/f/m/i/q)");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hirata_asm::assemble;

    fn prog() -> Program {
        assemble("fastfork\nlpid r1\nmul r2, r1, r1\nsw r2, 100(r1)\nhalt").unwrap()
    }

    #[test]
    fn stepping_reports_cycles_and_state() {
        let out = debug_session(Config::multithreaded(2), &prog(), "s 3\ni\ns 100\ni\nq").unwrap();
        assert!(out.contains("cycle 3"), "{out}");
        assert!(out.contains("priority order"), "{out}");
        assert!(out.contains("machine finished"), "{out}");
    }

    #[test]
    fn breakpoints_fire_on_issue() {
        let out = debug_session(Config::multithreaded(2), &prog(), "b 2\nc\nq").unwrap();
        assert!(out.contains("breakpoint set at @2"), "{out}");
        assert!(out.contains("issued @2 `mul r2, r1, r1`"), "{out}");
    }

    #[test]
    fn breakpoint_toggles_off() {
        let out = debug_session(Config::multithreaded(2), &prog(), "b 2\nb 2\nc\nq").unwrap();
        assert!(out.contains("breakpoint removed"), "{out}");
        assert!(out.contains("machine finished"), "{out}");
    }

    #[test]
    fn registers_and_memory_inspection() {
        let out = debug_session(Config::multithreaded(2), &prog(), "c\nr 1\nm 100 102\nq").unwrap();
        assert!(out.contains("i64 1"), "thread 1 stored 1: {out}");
    }

    #[test]
    fn junk_commands_are_reported_not_fatal() {
        let out = debug_session(Config::multithreaded(2), &prog(), "zap\nb\nm 5\nq").unwrap();
        assert!(out.contains("unknown command `zap`"));
        assert!(out.contains("usage: b <pc>"));
        assert!(out.contains("usage: m <a> <b>"));
    }
}
