//! Thin binary wrapper over [`hirata_cli::execute`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hirata_cli::execute(&args, hirata_cli::read_file) {
        Ok(out) => print!("{out}"),
        Err(hirata_cli::CliError::Failure(msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
        Err(hirata_cli::CliError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
