//! Command-line front end for the Hirata 1992 reproduction.
//!
//! ```text
//! hirata check  <file.s>                  assemble, report errors
//! hirata disasm <file.s>                  assemble and print the listing
//! hirata run    <file.s> [options]        assemble and simulate
//! hirata trace  <file.s> [--slots N] [--format chrome|text]
//!                                          structured per-cycle event trace
//! hirata debug  <file.s> [--slots N]      scriptable single-step debugger
//! hirata emu    <file.s> [--slots N] [--dump A..B]
//!                                          architectural emulator (no timing)
//! hirata lab    <file.s> [options]        sweep a config grid through the
//!                                          parallel execution engine
//! hirata serve  [options]                 simulation-as-a-service daemon
//! hirata submit <file.s> [options]        run a sweep on a serve daemon
//! hirata stats  [--addr A]                daemon and artifact-store counters
//! hirata shutdown [--addr A]              stop a serve daemon
//!
//! run options:
//!   --slots N         thread slots (default 1)
//!   --base            use the Figure 3(b) baseline RISC pipeline
//!   --width D         per-slot issue width (default 1)
//!   --two-ls          second load/store unit
//!   --no-standby      disable standby stations
//!   --private-fetch   private per-slot instruction caches
//!   --trace           print every issue event
//!   --timeline        per-cycle issue grid (one column per slot)
//!   --dump A..B       print data memory words [A, B) after the run
//!   --max-cycles N    watchdog limit
//!
//! lab options:
//!   --slots LIST      comma-separated slot counts (default 1,2,4,8)
//!   --ls LIST         load/store units per point, from {1,2} (default 1)
//!   --jobs N          engine worker threads (default: one per CPU)
//!   --no-cache        simulate every point even if cached
//!   --timeout SECS    per-job wall-clock timeout
//!
//! serve options:
//!   --addr A          bind address (default 127.0.0.1:8080; port 0 ephemeral)
//!   --http-workers N  concurrent connections served (default 4)
//!   --jobs N          simulation workers per submission (default: one per CPU)
//!   --cache-dir D     artifact-store directory (default: the lab cache)
//!   --cache-budget B  LRU byte budget for the artifact store
//!   --no-cache        disable the artifact store
//!   --trace-dir D     Chrome trace directory (default target/serve-traces)
//!
//! submit options:
//!   --addr A          daemon address (default 127.0.0.1:8080)
//!   --slots LIST      comma-separated slot counts (default 1,2,4,8)
//!   --ls LIST         load/store units per point, from {1,2} (default 1)
//!   --mode M          pool (default) or interleaved
//!   --timeout SECS    per-job wall-clock timeout
//!   --trace           record Chrome trace artifacts daemon-side (pool mode)
//!
//! trace options:
//!   --slots N         thread slots (default 1)
//!   --width D         per-slot issue width (default 1)
//!   --two-ls          second load/store unit
//!   --format F        chrome (trace_event JSON for chrome://tracing or
//!                     Perfetto, one track per slot and per FU) or text
//!                     (compact line-per-event log; default)
//!   --max-cycles N    watchdog limit
//! ```
//!
//! The command logic lives in this library (returning the would-be
//! terminal output) so it can be tested without spawning processes;
//! `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod debugger;

pub use debugger::debug_session;

use std::fmt::Write as _;
use std::io::IsTerminal;

use hirata_isa::FuConfig;
use hirata_sim::{Config, Machine};

/// A CLI failure: the message to print to stderr (exit status 1) or a
/// usage error (exit status 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Operational failure (bad source file, machine error).
    Failure(String),
    /// Command-line misuse; the usage text should be shown.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Failure(m) | CliError::Usage(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

/// The usage text.
pub const USAGE: &str = "usage:
  hirata check  <file.s>
  hirata disasm <file.s>
  hirata run    <file.s> [--slots N] [--base] [--width D] [--two-ls]
                         [--no-standby] [--private-fetch] [--trace]
                         [--timeline] [--dump A..B] [--max-cycles N]
                         [--no-fast-forward] [--no-warp]
  hirata trace  <file.s> [--slots N] [--width D] [--two-ls]
                         [--format chrome|text] [--max-cycles N]
                         [--no-fast-forward] [--no-warp] [--warp-debug]
  hirata debug  <file.s> [--slots N]    (commands on stdin: s/c/b/r/f/m/i/q)
  hirata emu    <file.s> [--slots N] [--dump A..B]
  hirata lab    <file.s> [--slots LIST] [--ls LIST] [--jobs N]
                         [--no-cache] [--timeout SECS]
  hirata serve  [--addr A] [--http-workers N] [--jobs N] [--cache-dir D]
                         [--cache-budget B] [--no-cache] [--trace-dir D]
  hirata submit <file.s> [--addr A] [--slots LIST] [--ls LIST]
                         [--mode pool|interleaved] [--timeout SECS] [--trace]
  hirata stats  [--addr A]
  hirata shutdown [--addr A]";

/// Executes the command line (without the program name); returns the
/// stdout text.
///
/// # Errors
///
/// [`CliError::Usage`] for malformed invocations, [`CliError::Failure`]
/// for assembly or simulation failures.
pub fn execute(
    args: &[String],
    read: impl Fn(&str) -> std::io::Result<String>,
) -> Result<String, CliError> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(|| CliError::Usage(USAGE.into()))?;
    match cmd.as_str() {
        "check" | "disasm" => {
            let path = it.next().ok_or_else(|| CliError::Usage(USAGE.into()))?;
            if it.next().is_some() {
                return Err(CliError::Usage(USAGE.into()));
            }
            let source =
                read(path).map_err(|e| CliError::Failure(format!("cannot read `{path}`: {e}")))?;
            let program = hirata_asm::assemble(&source)
                .map_err(|e| CliError::Failure(format!("{path}:{e}")))?;
            if cmd == "check" {
                Ok(format!(
                    "{path}: ok ({} instructions, {} data words)\n",
                    program.len(),
                    program.data.iter().map(|s| s.words.len()).sum::<usize>()
                ))
            } else {
                Ok(program.listing())
            }
        }
        "run" => run(&args[1..], read),
        "trace" => trace_cmd(&args[1..], read),
        "lab" => lab(&args[1..], read),
        "serve" => serve_cmd(&args[1..]),
        "submit" => submit_cmd(&args[1..], read),
        "stats" => stats_cmd(&args[1..]),
        "shutdown" => shutdown_cmd(&args[1..]),
        "emu" => {
            let mut path: Option<&String> = None;
            let mut slots = 1usize;
            let mut dump: Option<(u64, u64)> = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--slots" => slots = parse_num("--slots", rest.next())?,
                    "--dump" => {
                        let spec = rest.next().ok_or_else(|| {
                            CliError::Usage(format!("--dump needs A..B\n{USAGE}"))
                        })?;
                        let (a, b) = spec.split_once("..").ok_or_else(|| {
                            CliError::Usage(format!("--dump needs A..B\n{USAGE}"))
                        })?;
                        let lo = a.parse().map_err(|_| {
                            CliError::Usage(format!("invalid --dump range\n{USAGE}"))
                        })?;
                        let hi = b.parse().map_err(|_| {
                            CliError::Usage(format!("invalid --dump range\n{USAGE}"))
                        })?;
                        dump = Some((lo, hi));
                    }
                    a if a.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{a}`\n{USAGE}")))
                    }
                    _ if path.is_none() => path = Some(arg),
                    other => {
                        return Err(CliError::Usage(format!(
                            "unexpected argument `{other}`\n{USAGE}"
                        )))
                    }
                }
            }
            let path = path.ok_or_else(|| CliError::Usage(USAGE.into()))?;
            let source =
                read(path).map_err(|e| CliError::Failure(format!("cannot read `{path}`: {e}")))?;
            let program = hirata_asm::assemble(&source)
                .map_err(|e| CliError::Failure(format!("{path}:{e}")))?;
            let outcome = hirata_sim::Emulator::execute(&program, slots, 1 << 20, 500_000_000)
                .map_err(|e| CliError::Failure(e.to_string()))?;
            let mut out = String::new();
            let _ = writeln!(out, "instructions:  {}", outcome.instructions);
            let _ = writeln!(out, "threads killed: {}", outcome.threads_killed);
            if let Some((lo, hi)) = dump {
                let _ = writeln!(out, "memory [{lo}..{hi}):");
                for addr in lo..hi {
                    let bits =
                        outcome.memory.read(addr).map_err(|e| CliError::Failure(e.to_string()))?;
                    let _ = writeln!(
                        out,
                        "  [{addr:>6}] {bits:#018x}  i64 {:<20}  f64 {}",
                        bits as i64,
                        f64::from_bits(bits)
                    );
                }
            }
            Ok(out)
        }
        "debug" => {
            let mut path: Option<&String> = None;
            let mut slots = 1usize;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--slots" => slots = parse_num("--slots", rest.next())?,
                    a if a.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{a}`\n{USAGE}")))
                    }
                    _ if path.is_none() => path = Some(arg),
                    other => {
                        return Err(CliError::Usage(format!(
                            "unexpected argument `{other}`\n{USAGE}"
                        )))
                    }
                }
            }
            let path = path.ok_or_else(|| CliError::Usage(USAGE.into()))?;
            let source =
                read(path).map_err(|e| CliError::Failure(format!("cannot read `{path}`: {e}")))?;
            let program = hirata_asm::assemble(&source)
                .map_err(|e| CliError::Failure(format!("{path}:{e}")))?;
            let mut input = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut input)
                .map_err(|e| CliError::Failure(format!("cannot read stdin: {e}")))?;
            debugger::debug_session(Config::multithreaded(slots), &program, &input)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, CliError> {
    value
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value\n{USAGE}")))?
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid value for {flag}\n{USAGE}")))
}

fn run(
    args: &[String],
    read: impl Fn(&str) -> std::io::Result<String>,
) -> Result<String, CliError> {
    let mut path: Option<&String> = None;
    let mut slots = 1usize;
    let mut width = 1usize;
    let mut base = false;
    let mut two_ls = false;
    let mut standby = true;
    let mut private_fetch = false;
    let mut trace = false;
    let mut timeline = false;
    let mut dump: Option<(u64, u64)> = None;
    let mut max_cycles: Option<u64> = None;
    let mut fast_forward = true;
    let mut warp = true;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--slots" => slots = parse_num("--slots", it.next())?,
            "--width" => width = parse_num("--width", it.next())?,
            "--base" => base = true,
            "--two-ls" => two_ls = true,
            "--no-standby" => standby = false,
            "--private-fetch" => private_fetch = true,
            "--trace" => trace = true,
            "--timeline" => timeline = true,
            "--no-fast-forward" => fast_forward = false,
            "--no-warp" => warp = false,
            "--max-cycles" => max_cycles = Some(parse_num("--max-cycles", it.next())?),
            "--dump" => {
                let spec = it
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("--dump needs A..B\n{USAGE}")))?;
                let (a, b) = spec
                    .split_once("..")
                    .ok_or_else(|| CliError::Usage(format!("--dump needs A..B\n{USAGE}")))?;
                let lo: u64 = a
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid --dump range\n{USAGE}")))?;
                let hi: u64 = b
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid --dump range\n{USAGE}")))?;
                if hi < lo {
                    return Err(CliError::Usage(format!("invalid --dump range\n{USAGE}")));
                }
                dump = Some((lo, hi));
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown flag `{flag}`\n{USAGE}")))
            }
            _ if path.is_none() => path = Some(arg),
            _ => return Err(CliError::Usage(format!("unexpected argument `{arg}`\n{USAGE}"))),
        }
    }
    let path = path.ok_or_else(|| CliError::Usage(USAGE.into()))?;
    let source = read(path).map_err(|e| CliError::Failure(format!("cannot read `{path}`: {e}")))?;
    let program =
        hirata_asm::assemble(&source).map_err(|e| CliError::Failure(format!("{path}:{e}")))?;

    let mut config = if base {
        let mut c = Config::base_risc();
        c.thread_slots = slots; // >1 rejected by validation below
        c
    } else {
        Config::multithreaded(slots)
    };
    config.issue_width = width;
    if two_ls {
        config.fu = FuConfig::paper_two_ls();
    }
    config.standby_stations = standby;
    config.private_fetch = private_fetch;
    config.fast_forward = fast_forward;
    config.warp = warp;
    if let Some(limit) = max_cycles {
        config.max_cycles = limit;
    }
    config.validate().map_err(|e| CliError::Failure(e.to_string()))?;

    let slots_used = config.thread_slots;
    let mut machine =
        Machine::new(config, &program).map_err(|e| CliError::Failure(e.to_string()))?;
    machine.set_trace(trace || timeline);
    machine.run().map_err(|e| CliError::Failure(e.to_string()))?;
    let stats = machine.stats();

    let mut out = String::new();
    if trace {
        for e in machine.trace() {
            let _ = writeln!(
                out,
                "cycle {:>6}  slot {}  @{:<5} {}",
                e.cycle, e.slot, e.pc, program.insts[e.pc as usize]
            );
        }
        let _ = writeln!(out);
    }
    if timeline {
        out.push_str(&render_timeline(machine.trace(), slots_used, 120));
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "cycles:        {}", stats.cycles);
    let _ = writeln!(out, "instructions:  {}", stats.instructions);
    let _ = writeln!(out, "ipc:           {:.3}", stats.ipc());
    let (busiest, util) = stats.busiest_unit();
    let _ = writeln!(out, "busiest unit:  {busiest} ({util:.1}%)");
    out.push_str(&stats.utilization_report());
    if let Some((lo, hi)) = dump {
        let _ = writeln!(out, "memory [{lo}..{hi}):");
        for addr in lo..hi {
            let bits = machine.memory().read(addr).map_err(|e| CliError::Failure(e.to_string()))?;
            let _ = writeln!(
                out,
                "  [{addr:>6}] {bits:#018x}  i64 {:<20}  f64 {}",
                bits as i64,
                f64::from_bits(bits)
            );
        }
    }
    Ok(out)
}

/// `hirata trace`: simulate with a structured-event sink attached and
/// return the rendered trace — Chrome `trace_event` JSON (loadable in
/// `chrome://tracing` or Perfetto, one track per thread slot and per
/// functional unit) or the compact text log.
fn trace_cmd(
    args: &[String],
    read: impl Fn(&str) -> std::io::Result<String>,
) -> Result<String, CliError> {
    let mut path: Option<&String> = None;
    let mut slots = 1usize;
    let mut width = 1usize;
    let mut two_ls = false;
    let mut format = TraceFormat::Text;
    let mut max_cycles: Option<u64> = None;
    let mut fast_forward = true;
    let mut warp = true;
    let mut warp_debug = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--slots" => slots = parse_num("--slots", it.next())?,
            "--width" => width = parse_num("--width", it.next())?,
            "--two-ls" => two_ls = true,
            "--max-cycles" => max_cycles = Some(parse_num("--max-cycles", it.next())?),
            "--no-fast-forward" => fast_forward = false,
            "--no-warp" => warp = false,
            "--warp-debug" => warp_debug = true,
            "--format" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("--format needs a value\n{USAGE}")))?;
                format = match value.as_str() {
                    "chrome" => TraceFormat::Chrome,
                    "text" => TraceFormat::Text,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown trace format `{other}` (chrome or text)\n{USAGE}"
                        )))
                    }
                };
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown flag `{flag}`\n{USAGE}")))
            }
            _ if path.is_none() => path = Some(arg),
            _ => return Err(CliError::Usage(format!("unexpected argument `{arg}`\n{USAGE}"))),
        }
    }
    let path = path.ok_or_else(|| CliError::Usage(USAGE.into()))?;
    let source = read(path).map_err(|e| CliError::Failure(format!("cannot read `{path}`: {e}")))?;
    let program =
        hirata_asm::assemble(&source).map_err(|e| CliError::Failure(format!("{path}:{e}")))?;

    let mut config = Config::multithreaded(slots);
    config.issue_width = width;
    if two_ls {
        config.fu = FuConfig::paper_two_ls();
    }
    config.fast_forward = fast_forward;
    config.warp = warp;
    if let Some(limit) = max_cycles {
        config.max_cycles = limit;
    }
    if warp_debug && !warp {
        return Err(CliError::Usage(format!("--warp-debug needs warp enabled\n{USAGE}")));
    }
    if warp_debug && matches!(format, TraceFormat::Chrome) {
        return Err(CliError::Usage(format!(
            "--warp-debug needs --format text (chrome output must stay pure JSON)\n{USAGE}"
        )));
    }
    config.validate().map_err(|e| CliError::Failure(e.to_string()))?;
    let fu = config.fu.clone();
    let slots_used = config.thread_slots;

    let mut machine =
        Machine::new(config, &program).map_err(|e| CliError::Failure(e.to_string()))?;
    machine.set_warp_debug(warp_debug);
    match format {
        TraceFormat::Chrome => {
            let sink = hirata_sim::ChromeSink::new();
            machine.attach_trace_sink(Box::new(sink.clone()));
            machine.run().map_err(|e| CliError::Failure(e.to_string()))?;
            Ok(sink.render(slots_used, &fu))
        }
        TraceFormat::Text => {
            let sink = hirata_sim::TextSink::new();
            machine.attach_trace_sink(Box::new(sink.clone()));
            machine.run().map_err(|e| CliError::Failure(e.to_string()))?;
            let mut out = sink.text();
            if warp_debug {
                out.push_str(&warp_debug_report(&machine));
            }
            Ok(out)
        }
    }
}

/// Renders the `--warp-debug` period report: every steady-state loop
/// the warp engine verified, with its cycle footprint and per-period
/// register deltas.
fn warp_debug_report(machine: &Machine) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("\nwarp periods:\n");
    let periods = machine.warp_periods();
    if periods.is_empty() {
        out.push_str("  (none detected)\n");
        return out;
    }
    for p in periods {
        let pcs: Vec<String> = p.footprint.iter().map(|pc| format!("{pc:#06x}")).collect();
        let _ = write!(
            out,
            "  start {:>8}  period {:>4}  verified x{:<4} leapt {:>8}  pcs [{}]\n    delta",
            p.start,
            p.period,
            p.repeats,
            p.leapt,
            pcs.join(" "),
        );
        if p.deltas.is_empty() {
            out.push_str(" (none)");
        }
        for &(ctx, reg, d) in &p.deltas {
            let _ = write!(out, " ctx{ctx}:r{reg}{d:+}");
        }
        out.push('\n');
    }
    out
}

/// Output format of `hirata trace`.
enum TraceFormat {
    Chrome,
    Text,
}

/// `hirata lab`: assemble a program and sweep a slots x load/store
/// grid through the parallel execution engine, one job per grid
/// point. Engine progress and the batch report go to stderr; the
/// result table (identical whatever the worker count or cache state)
/// is the returned stdout text.
fn lab(
    args: &[String],
    read: impl Fn(&str) -> std::io::Result<String>,
) -> Result<String, CliError> {
    let mut path: Option<&String> = None;
    let mut slots_list = vec![1usize, 2, 4, 8];
    let mut ls_list = vec![1usize];
    let mut jobs: Option<usize> = None;
    let mut no_cache = false;
    let mut timeout: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--slots" => slots_list = parse_list("--slots", it.next())?,
            "--ls" => ls_list = parse_list("--ls", it.next())?,
            "--jobs" => jobs = Some(parse_num("--jobs", it.next())?),
            "--no-cache" => no_cache = true,
            "--timeout" => timeout = Some(parse_num("--timeout", it.next())?),
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown flag `{flag}`\n{USAGE}")))
            }
            _ if path.is_none() => path = Some(arg),
            _ => return Err(CliError::Usage(format!("unexpected argument `{arg}`\n{USAGE}"))),
        }
    }
    let path = path.ok_or_else(|| CliError::Usage(USAGE.into()))?;
    if slots_list.is_empty() || slots_list.contains(&0) {
        return Err(CliError::Usage(format!("--slots needs positive counts\n{USAGE}")));
    }
    if ls_list.is_empty() || ls_list.iter().any(|&ls| ls != 1 && ls != 2) {
        return Err(CliError::Usage(format!("--ls entries must be 1 or 2\n{USAGE}")));
    }

    let source = read(path).map_err(|e| CliError::Failure(format!("cannot read `{path}`: {e}")))?;
    let program = std::sync::Arc::new(
        hirata_asm::assemble(&source).map_err(|e| CliError::Failure(format!("{path}:{e}")))?,
    );

    let mut engine = hirata_lab::Lab::new();
    if let Some(jobs) = jobs {
        engine = engine.with_workers(jobs);
    }
    if no_cache {
        engine = engine.without_cache();
    }

    // The engine's own progress line is replaced by per-job `k/n`
    // lines from the completion hook below.
    engine = engine.quiet();

    let grid = hirata_serve::sweep_grid(&slots_list, &ls_list);
    let batch_jobs: Vec<hirata_lab::Job> = grid
        .iter()
        .map(|&(slots, ls)| {
            let mut job = hirata_lab::Job::new(
                format!("{path} s{slots} {ls}LS"),
                hirata_serve::sweep_config(slots, ls),
                std::sync::Arc::clone(&program),
            );
            if let Some(secs) = timeout {
                job = job.with_timeout(std::time::Duration::from_secs(secs));
            }
            job
        })
        .collect();

    let live = std::io::stderr().is_terminal();
    let batch = engine.run_batch_observed(batch_jobs, &mut |summary| {
        if live {
            let provenance = match (summary.cached, summary.result.is_ok()) {
                (true, _) => "cached",
                (false, true) => "simulated",
                (false, false) => "failed",
            };
            eprintln!(
                "[lab] {}/{} {} ({provenance})",
                summary.finished, summary.total, summary.name
            );
        }
    });
    eprintln!("[lab] {}", batch.report);

    let rows: Vec<hirata_serve::SweepRow> = grid
        .iter()
        .zip(&batch.results)
        .map(|(&(slots, ls), result)| hirata_serve::SweepRow {
            slots,
            ls,
            outcome: match result {
                Ok(out_job) => Ok((out_job.stats.cycles, out_job.stats.instructions)),
                Err(err) => Err(err.to_string()),
            },
        })
        .collect();
    let out = hirata_serve::render_sweep_table(path, engine.workers(), &rows);
    if batch.report.failed > 0 {
        return Err(CliError::Failure(format!(
            "{} of {} grid points failed\n{out}",
            batch.report.failed,
            grid.len()
        )));
    }
    Ok(out)
}

/// Default daemon address shared by `serve`, `submit`, `stats`, and
/// `shutdown`.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:8080";

/// `hirata serve`: boot the simulation-as-a-service daemon and block
/// until a `POST /shutdown` arrives.
fn serve_cmd(args: &[String]) -> Result<String, CliError> {
    let mut config =
        hirata_serve::server::ServeConfig { addr: DEFAULT_SERVE_ADDR.into(), ..Default::default() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = take_value("--addr", it.next())?;
            }
            "--http-workers" => config.http_workers = parse_num("--http-workers", it.next())?,
            "--jobs" => config.sim_workers = Some(parse_num("--jobs", it.next())?),
            "--cache-dir" => config.cache_dir = Some(take_value("--cache-dir", it.next())?.into()),
            "--cache-budget" => {
                config.cache_budget = Some(parse_num::<u64>("--cache-budget", it.next())?)
            }
            "--no-cache" => config.no_cache = true,
            "--trace-dir" => config.trace_dir = take_value("--trace-dir", it.next())?.into(),
            flag => return Err(CliError::Usage(format!("unknown flag `{flag}`\n{USAGE}"))),
        }
    }
    let server = hirata_serve::server::Server::bind(config)
        .map_err(|e| CliError::Failure(format!("cannot bind daemon: {e}")))?;
    let addr = server.local_addr();
    server.run().map_err(|e| CliError::Failure(format!("daemon failed: {e}")))?;
    Ok(format!("serve: {addr} shut down\n"))
}

/// `hirata submit`: run a sweep on a remote daemon; the result table
/// is byte-identical to `hirata lab` on the same grid.
fn submit_cmd(
    args: &[String],
    read: impl Fn(&str) -> std::io::Result<String>,
) -> Result<String, CliError> {
    let mut path: Option<&String> = None;
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut slots_list = vec![1usize, 2, 4, 8];
    let mut ls_list = vec![1usize];
    let mut mode = hirata_serve::client::Mode::Pool;
    let mut timeout: Option<u64> = None;
    let mut trace = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = take_value("--addr", it.next())?,
            "--slots" => slots_list = parse_list("--slots", it.next())?,
            "--ls" => ls_list = parse_list("--ls", it.next())?,
            "--mode" => {
                mode = match take_value("--mode", it.next())?.as_str() {
                    "pool" => hirata_serve::client::Mode::Pool,
                    "interleaved" => hirata_serve::client::Mode::Interleaved,
                    other => {
                        return Err(CliError::Usage(format!("unknown mode `{other}`\n{USAGE}")))
                    }
                }
            }
            "--timeout" => timeout = Some(parse_num::<u64>("--timeout", it.next())?),
            "--trace" => trace = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown flag `{flag}`\n{USAGE}")))
            }
            _ if path.is_none() => path = Some(arg),
            _ => return Err(CliError::Usage(format!("unexpected argument `{arg}`\n{USAGE}"))),
        }
    }
    let path = path.ok_or_else(|| CliError::Usage(USAGE.into()))?;
    if slots_list.is_empty() || slots_list.contains(&0) {
        return Err(CliError::Usage(format!("--slots needs positive counts\n{USAGE}")));
    }
    if ls_list.is_empty() || ls_list.iter().any(|&ls| ls != 1 && ls != 2) {
        return Err(CliError::Usage(format!("--ls entries must be 1 or 2\n{USAGE}")));
    }
    let source = read(path).map_err(|e| CliError::Failure(format!("cannot read `{path}`: {e}")))?;

    let request = hirata_serve::client::SubmitRequest {
        name: path.clone(),
        program: source,
        slots: slots_list,
        ls: ls_list,
        mode,
        timeout_secs: timeout,
        trace,
    };
    let live = std::io::stderr().is_terminal();
    let outcome = hirata_serve::client::submit(&addr, &request, &mut |finished, total| {
        if live {
            eprintln!("[submit] {finished}/{total} done");
        }
    })
    .map_err(|e| CliError::Failure(format!("submit to {addr} failed: {e}")))?;

    let rows: Vec<hirata_serve::SweepRow> = outcome
        .rows
        .iter()
        .map(|row| hirata_serve::SweepRow {
            slots: row.slots,
            ls: row.ls,
            outcome: row.outcome.clone(),
        })
        .collect();
    let out = hirata_serve::render_sweep_table(path, outcome.workers, &rows);
    if outcome.failed > 0 {
        return Err(CliError::Failure(format!(
            "{} of {} grid points failed\n{out}",
            outcome.failed,
            rows.len()
        )));
    }
    Ok(out)
}

/// `hirata stats`: pretty-print a daemon's `/stats` document.
fn stats_cmd(args: &[String]) -> Result<String, CliError> {
    let addr = addr_only_args("stats", args)?;
    let stats = hirata_serve::client::fetch_stats(&addr)
        .map_err(|e| CliError::Failure(format!("stats from {addr} failed: {e}")))?;
    Ok(format!("{}\n", stats.render_pretty()))
}

/// `hirata shutdown`: gracefully stop a daemon.
fn shutdown_cmd(args: &[String]) -> Result<String, CliError> {
    let addr = addr_only_args("shutdown", args)?;
    hirata_serve::client::shutdown(&addr)
        .map_err(|e| CliError::Failure(format!("shutdown of {addr} failed: {e}")))?;
    Ok(format!("shutdown: {addr} asked to stop\n"))
}

/// Parses the `[--addr A]`-only argument form of `stats`/`shutdown`.
fn addr_only_args(cmd: &str, args: &[String]) -> Result<String, CliError> {
    let mut addr = DEFAULT_SERVE_ADDR.to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = take_value("--addr", it.next())?,
            flag => {
                return Err(CliError::Usage(format!("{cmd}: unknown argument `{flag}`\n{USAGE}")))
            }
        }
    }
    Ok(addr)
}

/// Requires a flag's value argument.
fn take_value(flag: &str, value: Option<&String>) -> Result<String, CliError> {
    value.cloned().ok_or_else(|| CliError::Usage(format!("{flag} needs a value\n{USAGE}")))
}

/// Parses a comma-separated list of numbers (`1,2,4`).
fn parse_list(flag: &str, value: Option<&String>) -> Result<Vec<usize>, CliError> {
    value
        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value\n{USAGE}")))?
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid value for {flag}\n{USAGE}")))
        })
        .collect()
}

/// Renders the first `max_cycles` cycles of an issue trace as a grid:
/// one column per thread slot, the issued instruction address in each
/// cell, `.` for a cycle with no issue from that slot.
fn render_timeline(trace: &[hirata_sim::IssueEvent], slots: usize, max_cycles: u64) -> String {
    let mut out = String::new();
    if trace.is_empty() {
        return out;
    }
    let last = trace.iter().map(|e| e.cycle).max().expect("non-empty").min(max_cycles);
    let _ = write!(out, "{:>6} ", "cycle");
    for s in 0..slots {
        let _ = write!(out, "{:>6}", format!("s{s}"));
    }
    let _ = writeln!(out);
    let mut idx = 0usize;
    for cycle in 0..=last {
        let mut cells = vec![String::from("."); slots];
        while idx < trace.len() && trace[idx].cycle == cycle {
            cells[trace[idx].slot] = format!("@{}", trace[idx].pc);
            idx += 1;
        }
        if cells.iter().all(|c| c == ".") {
            continue; // skip fully idle cycles
        }
        let _ = write!(out, "{cycle:>6} ");
        for cell in cells {
            let _ = write!(out, "{cell:>6}");
        }
        let _ = writeln!(out);
    }
    if trace.iter().any(|e| e.cycle > max_cycles) {
        let _ = writeln!(out, "  ... (truncated at cycle {max_cycles})");
    }
    out
}

/// Reads files from the real filesystem (the production `read`).
pub fn read_file(path: &str) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_fs(src: &'static str) -> impl Fn(&str) -> std::io::Result<String> {
        move |path| {
            if path == "prog.s" {
                Ok(src.to_owned())
            } else {
                Err(std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"))
            }
        }
    }

    fn args(text: &str) -> Vec<String> {
        text.split_whitespace().map(String::from).collect()
    }

    const PROG: &str = "
        fastfork
        lpid r1
        mul  r2, r1, r1
        sw   r2, 100(r1)
        halt
    ";

    #[test]
    fn check_reports_counts() {
        let out = execute(&args("check prog.s"), fake_fs(PROG)).unwrap();
        assert!(out.contains("ok (5 instructions, 0 data words)"));
    }

    #[test]
    fn disasm_prints_listing() {
        let out = execute(&args("disasm prog.s"), fake_fs(PROG)).unwrap();
        assert!(out.contains("fastfork"));
        assert!(out.contains("@4"));
    }

    #[test]
    fn run_reports_stats_and_dump() {
        let out = execute(&args("run prog.s --slots 4 --dump 100..104"), fake_fs(PROG)).unwrap();
        assert!(out.contains("cycles:"), "{out}");
        assert!(out.contains("int-mul"), "{out}");
        assert!(out.contains("i64 9"), "thread 3 squares to 9: {out}");
    }

    #[test]
    fn run_trace_lists_issues() {
        let out = execute(&args("run prog.s --trace --base"), fake_fs(PROG)).unwrap();
        assert!(out.contains("slot 0"), "{out}");
        assert!(out.contains("mul  r2, r1, r1") || out.contains("mul r2, r1, r1"), "{out}");
    }

    #[test]
    fn trace_text_logs_events() {
        let out = execute(&args("trace prog.s --slots 4"), fake_fs(PROG)).unwrap();
        assert!(out.contains("issue pc=0x0000"), "{out}");
        assert!(out.contains("fu-win"), "{out}");
        assert!(out.contains("stall no-thread"), "{out}");
    }

    #[test]
    fn trace_chrome_emits_trace_event_json() {
        let out = execute(&args("trace prog.s --slots 4 --format chrome"), fake_fs(PROG)).unwrap();
        assert!(out.starts_with("{\"traceEvents\":["), "{out}");
        for s in 0..4 {
            assert!(out.contains(&format!("slot {s}")), "{out}");
        }
        assert!(out.contains("int-mul.0"), "{out}");
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn no_fast_forward_output_is_identical() {
        for cmd in ["run prog.s --slots 4 --dump 100..104", "trace prog.s --slots 4"] {
            let on = execute(&args(cmd), fake_fs(PROG)).unwrap();
            let off = execute(&args(&format!("{cmd} --no-fast-forward")), fake_fs(PROG)).unwrap();
            assert_eq!(on, off, "`{cmd}` output changed with the wheel off");
        }
    }

    const LOOP_PROG: &str = "
        li r1, #20000
        li r2, #0
        li r3, #4096
    loop:
        sw r2, 0(r3)
        add r3, r3, #1
        add r2, r2, #1
        sub r1, r1, #1
        bne r1, #0, loop
        halt
    ";

    #[test]
    fn no_warp_output_is_identical() {
        for cmd in [
            "run prog.s --slots 4 --dump 100..104",
            "run prog.s --dump 4096..4100",
            "trace prog.s --slots 2",
        ] {
            let on = execute(&args(cmd), fake_fs(LOOP_PROG)).unwrap();
            let off = execute(&args(&format!("{cmd} --no-warp")), fake_fs(LOOP_PROG)).unwrap();
            assert_eq!(on, off, "`{cmd}` output changed with warp off");
        }
    }

    #[test]
    fn warp_debug_appends_period_report() {
        let out = execute(&args("trace prog.s --warp-debug"), fake_fs(LOOP_PROG)).unwrap();
        assert!(out.contains("warp periods:"), "{out}");
        assert!(out.contains("period"), "{out}");
        // The loop counter, value, and pointer registers all step.
        assert!(out.contains("ctx0:r1"), "{out}");
        let chrome = execute(&args("trace prog.s --warp-debug --format chrome"), fake_fs(PROG));
        assert!(matches!(chrome, Err(CliError::Usage(_))));
        let nowarp = execute(&args("trace prog.s --warp-debug --no-warp"), fake_fs(PROG));
        assert!(matches!(nowarp, Err(CliError::Usage(_))));
    }

    #[test]
    fn trace_usage_errors() {
        for bad in ["trace", "trace prog.s --format pdf", "trace prog.s --bogus"] {
            let err = execute(&args(bad), fake_fs(PROG)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn assembly_errors_carry_path_and_line() {
        let err = execute(&args("check prog.s"), fake_fs("bogus r1")).unwrap_err();
        match err {
            CliError::Failure(m) => {
                assert!(m.contains("prog.s:line 1"), "{m}");
                assert!(m.contains("unknown mnemonic"), "{m}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_a_failure() {
        let err = execute(&args("run missing.s"), fake_fs(PROG)).unwrap_err();
        assert!(matches!(err, CliError::Failure(m) if m.contains("missing.s")));
    }

    #[test]
    fn usage_errors() {
        for bad in [
            "",
            "frobnicate prog.s",
            "run prog.s --slots",
            "run prog.s --dump 5",
            "run prog.s --dump 9..3",
            "run prog.s --bogus",
            "run prog.s extra.s",
        ] {
            let err = execute(&args(bad), fake_fs(PROG)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn lab_sweeps_a_grid() {
        let out =
            execute(&args("lab prog.s --slots 1,2 --ls 1,2 --jobs 2 --no-cache"), fake_fs(PROG))
                .unwrap();
        assert!(out.contains("4 grid points"), "{out}");
        // One table row per grid point, every point completed.
        assert_eq!(out.matches("\n     1").count() + out.matches("\n     2").count(), 4, "{out}");
        assert!(!out.contains("failed"), "{out}");
    }

    /// `hirata submit` against a live daemon prints the exact bytes
    /// `hirata lab` prints for the same grid — the contract that lets
    /// CI diff the two paths.
    #[test]
    fn submit_table_matches_lab_table() {
        let cache = std::env::temp_dir().join(format!("hirata-cli-submit-{}", std::process::id()));
        let config = hirata_serve::server::ServeConfig {
            addr: "127.0.0.1:0".into(),
            http_workers: 2,
            sim_workers: Some(2),
            cache_dir: Some(cache.clone()),
            quiet: true,
            ..Default::default()
        };
        let (addr, handle) = hirata_serve::server::Server::spawn(config).expect("daemon boots");

        let local =
            execute(&args("lab prog.s --slots 1,2 --ls 1 --jobs 2 --no-cache"), fake_fs(PROG))
                .unwrap();
        let remote = execute(
            &args(&format!("submit prog.s --slots 1,2 --ls 1 --addr {addr}")),
            fake_fs(PROG),
        )
        .unwrap();
        assert_eq!(remote, local, "remote and local tables differ");

        // Resubmission is served from the artifact store, bytes
        // unchanged; interleaved mode reports its single-lane header.
        let cached = execute(
            &args(&format!("submit prog.s --slots 1,2 --ls 1 --addr {addr}")),
            fake_fs(PROG),
        )
        .unwrap();
        assert_eq!(cached, local);
        let interleaved = execute(
            &args(&format!("submit prog.s --slots 1,2 --ls 1 --mode interleaved --addr {addr}")),
            fake_fs(PROG),
        )
        .unwrap();
        assert!(interleaved.contains("2 grid points, 1 workers"), "{interleaved}");

        let stats = execute(&args(&format!("stats --addr {addr}")), fake_fs(PROG)).unwrap();
        assert!(stats.contains("\"submissions\": 3"), "{stats}");

        let bye = execute(&args(&format!("shutdown --addr {addr}")), fake_fs(PROG)).unwrap();
        assert!(bye.contains("asked to stop"));
        handle.join().expect("daemon thread").expect("clean exit");
        let _ = std::fs::remove_dir_all(cache);
    }

    #[test]
    fn lab_usage_errors() {
        for bad in [
            "lab prog.s --slots 0",
            "lab prog.s --ls 3",
            "lab prog.s --slots one",
            "lab prog.s --bogus",
            "lab",
        ] {
            let err = execute(&args(bad), fake_fs(PROG)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn watchdog_is_reported_as_failure() {
        let err = execute(&args("run prog.s --max-cycles 3"), fake_fs("loop: j loop")).unwrap_err();
        assert!(matches!(err, CliError::Failure(m) if m.contains("watchdog")));
    }

    #[test]
    fn base_flag_conflicts_with_slots() {
        let err = execute(&args("run prog.s --base --slots 4"), fake_fs(PROG)).unwrap_err();
        assert!(matches!(err, CliError::Failure(m) if m.contains("single-threaded")));
    }
}
