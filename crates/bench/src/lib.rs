//! Shared helpers for the Criterion benchmarks. Each bench target
//! regenerates one of the paper's tables at benchmark-friendly sizes;
//! `cargo run --release -p hirata-repro` prints the full-size tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hirata_isa::Program;
use hirata_sim::{Config, Machine, RunStats};
use hirata_workloads::raytrace::RayTraceParams;

/// The scene used by the benchmark suite: smaller than the paper-scale
/// run but with the same instruction-mix character.
pub fn bench_scene() -> RayTraceParams {
    RayTraceParams { width: 8, height: 8, spheres: 6, seed: 42, shadows: true }
}

/// Runs `program` on `config`, panicking on machine errors (benchmark
/// programs are trusted).
pub fn run(config: Config, program: &Program) -> RunStats {
    let mut m = Machine::new(config, program).expect("bench machine builds");
    m.run().expect("bench program runs").clone()
}
