//! Simulator-throughput regression gate (the `bench-smoke` CI check).
//!
//! Measures simulated cycles per wall-clock second and issued MIPS
//! over the three EXPERIMENTS.md workloads — ray trace, Livermore K1,
//! and the Figure 6 linked-list loop — at 1, 4, and 8 thread slots,
//! using the same minimum-of-N estimator as `overhead_check.rs` (the
//! criterion stub's fixed-window means are too noisy on a shared box
//! to gate on).
//!
//! Modes:
//!
//! * `throughput_check` — measure, print a report, and compare each
//!   grid point against the checked-in baseline
//!   (`BENCH_throughput.json` at the repo root). Exits non-zero if
//!   any point regresses by more than 20%.
//! * `throughput_check --record` — measure and rewrite the baseline.
//! * `throughput_check --report <path>` — also write the report to
//!   `<path>` (uploaded as a CI artifact).
//! * `throughput_check --no-fast-forward` — disable the event-wheel
//!   fast-forward on every grid point and gate against the separate
//!   `BENCH_throughput_noff.json` baseline, so the plain cycle loop
//!   stays performance-gated alongside the wheel.
//! * `throughput_check --no-warp` — disable the loop-warp engine on
//!   every grid point (the event wheel stays on unless
//!   `--no-fast-forward` is also given). Warp on/off shares the same
//!   baseline file: warp is byte-identical by contract, and the gate
//!   measures wall time, not cycles.
//! * `throughput_check --profile` — instead of gating, print the
//!   per-phase wall-time shares (fetch / wake+bind / issue /
//!   arbitrate / writeback / wheel) for every grid point, via
//!   `Machine::step_profiled`, followed by the loop-warp counters per
//!   point (periods detected, leaps, periods leapt, % of simulated
//!   cycles covered by leaps, and verification misses by reason). The
//!   breakdowns recorded in EXPERIMENTS.md come from this mode.
//! * `throughput_check --probe [--points k1,k2,...]` — one quick
//!   machine-readable measurement pass: `key<TAB>cycles/sec` per
//!   selected grid point, no gating, no baseline. This is the unit of
//!   work `scripts/ab_bench.sh` interleaves between two binaries; the
//!   harness owns repetition and pairing, so the probe itself stays
//!   short (a couple of minimum-of-runs rounds per point).
//!
//! Improvements beyond the baseline never fail the gate; run with
//! `--record` after a deliberate performance change.
//!
//! Besides the per-point absolute gate, the fast-forward run also
//! gates *scaling*: the s8/s1 cycles-per-second ratio per workload
//! must not worsen by more than 20% against the same baseline, so
//! multi-slot per-cycle cost cannot silently creep back even while
//! every absolute number stays inside its own 20% band.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use hirata_isa::Program;
use hirata_sched::Strategy;
use hirata_sim::{Config, Machine, PhaseProfile, WarpMiss};
use hirata_workloads::linked_list::{eager_program, sequential_program, ListShape};
use hirata_workloads::livermore::kernel1_program;
use hirata_workloads::raytrace::{raytrace_program, RayTraceParams};

/// Regression threshold: fail if cycles/sec drops below 80% of the
/// recorded baseline for any grid point.
const REGRESSION_FRACTION: f64 = 0.80;

/// Timing rounds; each round times `RUNS_PER_ROUND` back-to-back runs
/// and the estimate is the per-run minimum over all rounds.
const ROUNDS: usize = 12;
const RUNS_PER_ROUND: usize = 4;
const WARMUP_RUNS: usize = 3;

struct GridPoint {
    /// Baseline key, e.g. `raytrace/s4`.
    key: String,
    config: Config,
    program: Program,
}

/// The loop-warp positive control: the `examples/asm/affine_stride.s`
/// shape at bench scale. Its steady state is built entirely from
/// warp-safe instructions (the paper workloads all keep a load in
/// their loop bodies, which pins them to plain stepping), so this
/// point both measures the leap path's speedup and keeps it
/// performance-gated.
fn affine_program(trips: u64) -> Program {
    hirata_asm::assemble(&format!(
        "
        fastfork
        lpid r1
        add  r9, r1, #1
        mul  r9, r9, #65536
        li   r8, #{trips}
        li   r7, #0
    loop:
        sw   r7, 0(r9)
        add  r9, r9, #1
        add  r7, r7, #5
        sub  r8, r8, #1
        bne  r8, #0, loop
        halt
    "
    ))
    .expect("affine loop assembles")
}

/// Trip count for the affine-loop grid point: long enough that the
/// warped run is dominated by leaps, short enough that the plain
/// (`--no-fast-forward --no-warp`) gate stays quick.
const AFFINE_TRIPS: u64 = 60_000;

fn grid(fast_forward: bool, warp: bool) -> Vec<GridPoint> {
    let ray = raytrace_program(&RayTraceParams::default());
    let k1_n = 64;
    let fig6 = ListShape { nodes: 60, break_at: Some(59) };
    let affine = affine_program(AFFINE_TRIPS);

    let mut points = Vec::new();
    for slots in [1usize, 2, 4, 8] {
        let config = if slots == 1 { Config::base_risc() } else { Config::multithreaded(slots) };
        let config = config.with_fast_forward(fast_forward).with_warp(warp);
        points.push(GridPoint {
            key: format!("raytrace/s{slots}"),
            config: config.clone(),
            program: ray.clone(),
        });
        // K1 at one slot has no threads to reserve for; use the plain
        // sequential lowering there and the reservation strategy where
        // the machine actually has slots.
        let (k1_prog, fig6_prog) = if slots == 1 {
            (kernel1_program(k1_n, Strategy::None), sequential_program(fig6))
        } else {
            (kernel1_program(k1_n, Strategy::ReservationB { threads: slots }), eager_program(fig6))
        };
        points.push(GridPoint {
            key: format!("livermore-k1/s{slots}"),
            config: config.clone(),
            program: k1_prog,
        });
        points.push(GridPoint {
            key: format!("fig6-list/s{slots}"),
            config: config.clone(),
            program: fig6_prog,
        });
        points.push(GridPoint {
            key: format!("affine-loop/s{slots}"),
            config,
            program: affine.clone(),
        });
    }
    points
}

struct Measurement {
    cycles: u64,
    instructions: u64,
    /// Best-case wall seconds for one run.
    secs: f64,
}

fn measure(point: &GridPoint) -> Measurement {
    let run = || {
        let mut m = Machine::new(point.config.clone(), &point.program).expect("machine builds");
        m.run().expect("program runs");
        (m.cycles(), m.stats().instructions)
    };
    let (cycles, instructions) = run();
    for _ in 0..WARMUP_RUNS {
        run();
    }
    let mut best = f64::MAX;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        for _ in 0..RUNS_PER_ROUND {
            run();
        }
        best = best.min(t.elapsed().as_secs_f64() / RUNS_PER_ROUND as f64);
    }
    Measurement { cycles, instructions, secs: best }
}

/// One probe measurement: smaller estimator than [`measure`] (the A/B
/// harness repeats and pairs probes across binaries, so each probe
/// only needs to be a stable minimum, not a full gate-quality one).
fn probe_measure(point: &GridPoint) -> Measurement {
    let run = || {
        let mut m = Machine::new(point.config.clone(), &point.program).expect("machine builds");
        m.run().expect("program runs");
        (m.cycles(), m.stats().instructions)
    };
    let (cycles, instructions) = run();
    let mut best = f64::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..2 {
            run();
        }
        best = best.min(t.elapsed().as_secs_f64() / 2.0);
    }
    Measurement { cycles, instructions, secs: best }
}

/// Profiled runs per grid point (shares converge fast; this is not a
/// timing estimator).
const PROFILE_RUNS: usize = 3;

fn profile_report(fast_forward: bool, warp: bool) -> String {
    let mut out = String::new();
    let mut warp_lines = String::new();
    out.push_str(&format!(
        "{:<18} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9}\n",
        "workload/slots", "fetch", "wake", "issue", "arb", "wb", "wheel", "ns/cycle"
    ));
    for point in grid(fast_forward, warp) {
        // One unprofiled warm-up run, then accumulate shares. The
        // warm-up run also supplies the warp counters — they are
        // deterministic, so one run is exact.
        let mut m = Machine::new(point.config.clone(), &point.program).expect("machine builds");
        m.run().expect("program runs");
        let ws = m.warp_stats();
        let mut miss_txt = WarpMiss::ALL
            .iter()
            .filter(|&&r| ws.misses(r) > 0)
            .map(|&r| format!("{} {}", r.label(), ws.misses(r)))
            .collect::<Vec<_>>()
            .join(", ");
        if miss_txt.is_empty() {
            miss_txt = "none".to_string();
        }
        warp_lines.push_str(&format!(
            "{:<18} detected {:>5}  leaps {:>4}  periods leapt {:>8}  coverage {:>5.1}%  misses: {}\n",
            point.key,
            ws.periods_detected,
            ws.leaps,
            ws.periods_leapt,
            100.0 * ws.coverage(m.cycles()),
            miss_txt,
        ));
        let mut prof = PhaseProfile::default();
        let mut cycles = 0u64;
        for _ in 0..PROFILE_RUNS {
            let mut m = Machine::new(point.config.clone(), &point.program).expect("machine builds");
            while !m.step_profiled(&mut prof).expect("program runs") {}
            cycles += m.cycles();
        }
        let total = prof.total();
        let pct = |d: Duration| 100.0 * d.as_secs_f64() / total.as_secs_f64().max(1e-12);
        out.push_str(&format!(
            "{:<18} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>9.1}\n",
            point.key,
            pct(prof.fetch),
            pct(prof.wake_bind),
            pct(prof.issue),
            pct(prof.arbitrate),
            pct(prof.writeback),
            pct(prof.wheel),
            total.as_nanos() as f64 / cycles.max(1) as f64,
        ));
    }
    out.push_str("\nloop-warp counters (one deterministic run per point):\n");
    out.push_str(&warp_lines);
    out
}

/// Minimal flat-object JSON for the baseline file: string keys mapped
/// to finite non-negative numbers. Purpose-built so the gate needs no
/// external serializer.
fn render_baseline(values: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (k, v) in values {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("  \"{k}\": {v:.1}"));
    }
    out.push_str("\n}\n");
    out
}

fn parse_baseline(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("baseline is not a JSON object")?;
    let mut values = BTreeMap::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry.split_once(':').ok_or_else(|| format!("bad entry: {entry}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: f64 = value.trim().parse().map_err(|e| format!("bad number for {key}: {e}"))?;
        values.insert(key, value);
    }
    Ok(values)
}

fn baseline_path(fast_forward: bool) -> std::path::PathBuf {
    if let Ok(p) = std::env::var("BENCH_THROUGHPUT_BASELINE") {
        return p.into();
    }
    // crates/bench -> repo root.
    let name = if fast_forward { "BENCH_throughput.json" } else { "BENCH_throughput_noff.json" };
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let record = args.iter().any(|a| a == "--record");
    let fast_forward = !args.iter().any(|a| a == "--no-fast-forward");
    let warp = !args.iter().any(|a| a == "--no-warp");
    let profile = args.iter().any(|a| a == "--profile");
    let probe = args.iter().any(|a| a == "--probe");
    let points_filter: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--points")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(str::to_string).collect());
    let report_path = args
        .iter()
        .position(|a| a == "--report")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);

    if probe {
        for point in grid(fast_forward, warp) {
            if let Some(filter) = &points_filter {
                if !filter.contains(&point.key) {
                    continue;
                }
            }
            let m = probe_measure(&point);
            println!("{}\t{:.1}", point.key, m.cycles as f64 / m.secs);
        }
        return;
    }

    if profile {
        let report = profile_report(fast_forward, warp);
        print!("{report}");
        if let Some(path) = report_path {
            std::fs::write(&path, &report).expect("write report");
            eprintln!("profile written to {}", path.display());
        }
        return;
    }

    let mut report = String::new();
    report.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>10} {:>12}\n",
        "workload/slots", "cycles", "cycles/sec", "MIPS", "vs baseline"
    ));

    let baseline = match std::fs::read_to_string(baseline_path(fast_forward)) {
        Ok(text) => parse_baseline(&text).unwrap_or_else(|e| {
            eprintln!("warning: unreadable baseline: {e}");
            BTreeMap::new()
        }),
        Err(_) => BTreeMap::new(),
    };

    let mut measured = BTreeMap::new();
    let mut failures = Vec::new();
    for point in grid(fast_forward, warp) {
        let m = measure(&point);
        let cps = m.cycles as f64 / m.secs;
        let mips = m.instructions as f64 / m.secs / 1e6;
        let delta = baseline.get(&point.key).map(|&base| cps / base - 1.0);
        let delta_txt = match delta {
            Some(d) => format!("{:+.1}%", d * 100.0),
            None => "(new)".to_string(),
        };
        report.push_str(&format!(
            "{:<18} {:>12} {:>12.0} {:>10.2} {:>12}\n",
            point.key, m.cycles, cps, mips, delta_txt
        ));
        if let Some(d) = delta {
            if 1.0 + d < REGRESSION_FRACTION {
                failures.push(format!(
                    "{}: {:.0} cycles/sec is {:.1}% below baseline {:.0}",
                    point.key,
                    cps,
                    -d * 100.0,
                    baseline[&point.key]
                ));
            }
        }
        measured.insert(point.key, cps);
    }

    // Scaling gate: the s8/s1 cycles-per-second ratio per workload may
    // not worsen by more than the regression fraction. Catches
    // multi-slot cost creeping back even when every absolute number
    // stays inside its own band.
    for workload in ["raytrace", "livermore-k1", "fig6-list"] {
        let ratio_of = |values: &BTreeMap<String, f64>| -> Option<f64> {
            let s1 = values.get(&format!("{workload}/s1"))?;
            let s8 = values.get(&format!("{workload}/s8"))?;
            (*s1 > 0.0).then(|| s8 / s1)
        };
        if let (Some(measured), Some(base)) = (ratio_of(&measured), ratio_of(&baseline)) {
            report.push_str(&format!(
                "{:<18} s8/s1 scaling {:.3} (baseline {:.3}, {:+.1}%)\n",
                workload,
                measured,
                base,
                (measured / base - 1.0) * 100.0
            ));
            if measured < REGRESSION_FRACTION * base {
                failures.push(format!(
                    "{workload}: s8/s1 scaling ratio {measured:.3} is {:.1}% below baseline {base:.3}",
                    (1.0 - measured / base) * 100.0
                ));
            }
        }
    }

    print!("{report}");
    if let Some(path) = report_path {
        std::fs::write(&path, &report).expect("write report");
        eprintln!("report written to {}", path.display());
    }

    if record {
        let path = baseline_path(fast_forward);
        std::fs::write(&path, render_baseline(&measured)).expect("write baseline");
        eprintln!("baseline recorded to {}", path.display());
        return;
    }

    if baseline.is_empty() {
        eprintln!(
            "no baseline found at {}; run with --record first",
            baseline_path(fast_forward).display()
        );
        return;
    }
    if !failures.is_empty() {
        eprintln!("throughput regression (> {:.0}% drop):", (1.0 - REGRESSION_FRACTION) * 100.0);
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    eprintln!("throughput within {:.0}% of baseline", (1.0 - REGRESSION_FRACTION) * 100.0);
}
