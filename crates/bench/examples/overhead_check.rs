//! Minimum-of-N estimate of the no-op-sink tracing overhead.
//!
//! The criterion stub reports means over a fixed wall-clock window,
//! which on a noisy single-CPU box swings by more than the effect
//! being measured. This takes the *minimum* batch time over many
//! alternating no-sink / `NullSink` batches — the standard robust
//! estimator for "how fast can this go" — and prints the ratio that
//! EXPERIMENTS.md ("Tracing overhead") quotes against its <5% target.

use std::time::Instant;

fn main() {
    let shape = hirata_workloads::linked_list::ListShape { nodes: 60, break_at: Some(59) };
    let program = hirata_workloads::linked_list::eager_program(shape);
    let config = hirata_sim::Config::multithreaded(4);
    let run = |with_sink: bool| {
        let mut m = hirata_sim::Machine::new(config.clone(), &program).unwrap();
        if with_sink {
            m.attach_trace_sink(Box::new(hirata_sim::NullSink));
        }
        m.run().unwrap();
        m.cycles()
    };
    for _ in 0..50 {
        run(false);
        run(true);
    }
    let mut best_no = f64::MAX;
    let mut best_null = f64::MAX;
    for _ in 0..40 {
        let t = Instant::now();
        for _ in 0..20 {
            run(false);
        }
        best_no = best_no.min(t.elapsed().as_secs_f64() / 20.0);
        let t = Instant::now();
        for _ in 0..20 {
            run(true);
        }
        best_null = best_null.min(t.elapsed().as_secs_f64() / 20.0);
    }
    println!(
        "no-sink {:.1}us  null-sink {:.1}us  overhead {:+.2}%",
        best_no * 1e6,
        best_null * 1e6,
        (best_null / best_no - 1.0) * 100.0
    );
}
