//! Tracing-overhead benchmarks: the same Figure 6 while-loop workload
//! with no sink attached, with a [`NullSink`] (the zero-cost-when-
//! disabled claim: every event site is gated on the sink option, so
//! the no-op sink only pays the gate plus event construction), and
//! with the full [`ChromeSink`] pipeline including JSON rendering.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hirata_sim::{chrome_trace_json, ChromeSink, Config, Machine, NullSink, RingSink};
use hirata_workloads::linked_list::{eager_program, ListShape};

fn trace_overhead(c: &mut Criterion) {
    let shape = ListShape { nodes: 60, break_at: Some(59) };
    let program = eager_program(shape);
    let config = Config::multithreaded(4);

    let cycles = {
        let mut m = Machine::new(config.clone(), &program).expect("machine builds");
        m.run().expect("program runs");
        m.cycles()
    };

    let mut group = c.benchmark_group("trace-overhead");
    group.throughput(Throughput::Elements(cycles));

    group.bench_function("fig6-no-sink", |b| {
        b.iter(|| {
            let mut m = Machine::new(config.clone(), &program).expect("machine builds");
            m.run().expect("program runs");
            m.cycles()
        })
    });

    group.bench_function("fig6-null-sink", |b| {
        b.iter(|| {
            let mut m = Machine::new(config.clone(), &program).expect("machine builds");
            m.attach_trace_sink(Box::new(NullSink));
            m.run().expect("program runs");
            m.cycles()
        })
    });

    group.bench_function("fig6-chrome-sink", |b| {
        b.iter(|| {
            let sink = ChromeSink::new();
            let mut m = Machine::new(config.clone(), &program).expect("machine builds");
            m.attach_trace_sink(Box::new(sink.clone()));
            m.run().expect("program runs");
            sink.render(config.thread_slots, &config.fu).len()
        })
    });

    group.finish();
}

fn render_only(c: &mut Criterion) {
    // JSON rendering alone, separated from simulation: collect the
    // event stream once, then serialize it per iteration.
    let shape = ListShape { nodes: 60, break_at: Some(59) };
    let program = eager_program(shape);
    let config = Config::multithreaded(4);
    let sink = RingSink::new(1 << 22);
    let mut m = Machine::new(config.clone(), &program).expect("machine builds");
    m.attach_trace_sink(Box::new(sink.clone()));
    m.run().expect("program runs");
    let events = sink.events();

    let mut group = c.benchmark_group("trace-render");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("chrome-json", |b| {
        b.iter(|| chrome_trace_json(&events, config.thread_slots, &config.fu).len())
    });
    group.finish();
}

criterion_group!(benches, trace_overhead, render_only);
criterion_main!(benches);
