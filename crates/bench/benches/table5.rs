//! Table 5 benchmark: sequential versus eager execution of the
//! Figure 6 linked-list while loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hirata_bench::run;
use hirata_sim::Config;
use hirata_workloads::linked_list::{eager_program, sequential_program, ListShape};

fn table5(c: &mut Criterion) {
    let shape = ListShape { nodes: 64, break_at: Some(63) };
    let mut group = c.benchmark_group("table5");
    let seq = sequential_program(shape);
    group.bench_function("sequential", |b| b.iter(|| run(Config::base_risc(), &seq)));
    let eager = eager_program(shape);
    for slots in [2usize, 3, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eager-s{slots}")),
            &(),
            |b, ()| b.iter(|| run(Config::multithreaded(slots), &eager)),
        );
    }
    group.finish();
}

criterion_group!(benches, table5);
criterion_main!(benches);
