//! Table 3 benchmark: the (D,S) hybrid sweep — superscalar width
//! versus thread slots at equal issue budget on eight functional
//! units.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hirata_bench::{bench_scene, run};
use hirata_sim::Config;
use hirata_workloads::raytrace::raytrace_program;

fn table3(c: &mut Criterion) {
    let program = raytrace_program(&bench_scene());
    let mut group = c.benchmark_group("table3");
    for total in [2usize, 4, 8] {
        let mut width = 1;
        while width <= total {
            let slots = total / width;
            let id = BenchmarkId::from_parameter(format!("d{width}-s{slots}"));
            let config = Config::hybrid(width, slots);
            group.bench_with_input(id, &config, |b, config| {
                b.iter(|| run(config.clone(), &program))
            });
            width *= 2;
        }
    }
    group.finish();
}

criterion_group!(benches, table3);
criterion_main!(benches);
