//! Table 4 benchmark: Livermore Kernel 1 under the three §2.3.2
//! static-scheduling strategies, across machine widths. Also
//! benchmarks the schedulers themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hirata_bench::run;
use hirata_sched::{apply_strategy, Strategy};
use hirata_sim::Config;
use hirata_workloads::livermore::{kernel1_body, kernel1_program};

fn table4(c: &mut Criterion) {
    let n = 128;
    let mut group = c.benchmark_group("table4");
    for slots in [1usize, 4, 8] {
        for (name, strategy) in [
            ("none", Strategy::None),
            ("listA", Strategy::ListA),
            ("reservationB", Strategy::ReservationB { threads: slots }),
        ] {
            let program = kernel1_program(n, strategy);
            let id = BenchmarkId::from_parameter(format!("s{slots}-{name}"));
            group.bench_with_input(id, &(), |b, ()| {
                b.iter(|| run(Config::multithreaded(slots), &program))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("schedulers");
    let body = kernel1_body();
    group.bench_function("listA", |b| b.iter(|| apply_strategy(&body, Strategy::ListA)));
    group.bench_function("reservationB", |b| {
        b.iter(|| apply_strategy(&body, Strategy::ReservationB { threads: 8 }))
    });
    group.finish();
}

criterion_group!(benches, table4);
criterion_main!(benches);
