//! Kernel-sweep benchmark: every workload in the suite on the
//! one-load/store-unit machine across widths — the broader evaluation
//! the paper's §5 calls for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hirata_bench::run;
use hirata_sched::Strategy;
use hirata_sim::Config;
use hirata_workloads::linked_list::{eager_program, ListShape};
use hirata_workloads::livermore;
use hirata_workloads::radiosity::{radiosity_program, RadiosityParams};

fn kernels(c: &mut Criterion) {
    let programs = vec![
        ("lk1", livermore::kernel1_program(64, Strategy::ListA)),
        ("lk3", livermore::kernel3_program(64)),
        ("lk5", livermore::kernel5_program(64)),
        ("lk7", livermore::kernel7_program(48, Strategy::ListA)),
        ("radiosity", radiosity_program(&RadiosityParams { patches: 12, iterations: 2, seed: 7 })),
        ("eager-list", eager_program(ListShape { nodes: 48, break_at: Some(47) })),
    ];
    let mut group = c.benchmark_group("kernels");
    for (name, program) in &programs {
        for slots in [1usize, 4] {
            let id = BenchmarkId::from_parameter(format!("{name}-s{slots}"));
            group.bench_with_input(id, &(), |b, ()| {
                b.iter(|| run(Config::multithreaded(slots), program))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, kernels);
criterion_main!(benches);
