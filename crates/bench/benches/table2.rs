//! Table 2 benchmark: the parallel-multithreading speed-up experiment
//! (ray tracing on 2/4/8 slots, one or two load/store units, standby
//! stations on or off) at benchmark scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hirata_bench::{bench_scene, run};
use hirata_isa::FuConfig;
use hirata_sim::Config;
use hirata_workloads::raytrace::raytrace_program;

fn table2(c: &mut Criterion) {
    let program = raytrace_program(&bench_scene());
    let mut group = c.benchmark_group("table2");
    group.bench_function("baseline-risc", |b| b.iter(|| run(Config::base_risc(), &program)));
    for slots in [2usize, 4, 8] {
        for (ls, fu) in [(1, FuConfig::paper_one_ls()), (2, FuConfig::paper_two_ls())] {
            for standby in [false, true] {
                let id = BenchmarkId::from_parameter(format!(
                    "s{slots}-ls{ls}-{}",
                    if standby { "sb" } else { "nosb" }
                ));
                let config = Config::multithreaded(slots).with_fu(fu.clone()).with_standby(standby);
                group.bench_with_input(id, &config, |b, config| {
                    b.iter(|| run(config.clone(), &program))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
