//! Simulator-throughput benchmark over the Table 2 grid: how many
//! simulated cycles per wall-clock second (and issued MIPS) the
//! simulator itself sustains on the three EXPERIMENTS.md workloads at
//! 1, 4, and 8 thread slots.
//!
//! This measures the *simulator*, not the simulated machine — the same
//! grid the `throughput_check` example gates in CI against
//! `BENCH_throughput.json`. Use this bench for profiling sessions and
//! the example for the pass/fail regression check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hirata_sched::Strategy;
use hirata_sim::{Config, Machine, PredecodedProgram};
use hirata_workloads::linked_list::{eager_program, sequential_program, ListShape};
use hirata_workloads::livermore::kernel1_program;
use hirata_workloads::raytrace::{raytrace_program, RayTraceParams};

fn throughput(c: &mut Criterion) {
    let ray = raytrace_program(&RayTraceParams::default());
    let fig6 = ListShape { nodes: 60, break_at: Some(59) };
    let mut group = c.benchmark_group("throughput");
    for slots in [1usize, 4, 8] {
        let config = if slots == 1 { Config::base_risc() } else { Config::multithreaded(slots) };
        let (k1, list) = if slots == 1 {
            (kernel1_program(64, Strategy::None), sequential_program(fig6))
        } else {
            (kernel1_program(64, Strategy::ReservationB { threads: slots }), eager_program(fig6))
        };
        for (name, program) in [("raytrace", &ray), ("livermore-k1", &k1), ("fig6-list", &list)] {
            // Predecode once outside the timing loop — the bench times
            // the cycle loop plus (cheap) machine construction, the
            // unit the regression gate tracks.
            let pre = PredecodedProgram::shared(program).expect("program predecodes");
            let id = BenchmarkId::from_parameter(format!("{name}/s{slots}"));
            group.bench_with_input(id, &config, |b, config| {
                b.iter(|| {
                    let mut m = Machine::from_predecoded(config.clone(), pre.clone())
                        .expect("machine builds");
                    m.run().expect("program runs").cycles
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
