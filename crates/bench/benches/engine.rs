//! Execution-engine benchmarks: batch throughput through the
//! `hirata-lab` worker pool (cold, no cache), serial reference for
//! the same batch, and warm-cache lookup speed.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hirata_bench::run;
use hirata_lab::{Job, Lab};
use hirata_sched::Strategy;
use hirata_sim::Config;
use hirata_workloads::livermore;

/// The benchmark batch: Livermore Kernel 1 across 1/2/4/8 slots —
/// the same shape as one Table 4 strategy column.
fn batch(program: &Arc<hirata_isa::Program>) -> Vec<Job> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&slots| {
            Job::new(
                format!("bench k1 s{slots}"),
                Config::multithreaded(slots),
                Arc::clone(program),
            )
        })
        .collect()
}

fn engine_throughput(c: &mut Criterion) {
    let program = Arc::new(livermore::kernel1_program(64, Strategy::ListA));
    let jobs = batch(&program).len() as u64;

    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(jobs));

    // Serial reference: the same simulations, directly on the calling
    // thread — what the engine's overhead is measured against.
    group.bench_function("serial-reference", |b| {
        b.iter(|| {
            batch(&program)
                .iter()
                .map(|job| run(job.config.clone(), &job.program).cycles)
                .sum::<u64>()
        })
    });

    // Cold engine: pool + timeout threads + result channel, cache off
    // so every job simulates.
    let cold = Lab::new().without_cache().quiet();
    group.bench_function("pool-cold", |b| b.iter(|| cold.run_batch(batch(&program))));

    // Warm cache: every job answered from disk; measures hash +
    // cache-file parse, the per-job floor of a cached sweep.
    let dir = std::env::temp_dir().join(format!("hirata-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let warm = Lab::new().with_cache_dir(&dir).quiet();
    warm.run_batch(batch(&program)); // prime
    group.bench_function("cache-warm", |b| b.iter(|| warm.run_batch(batch(&program))));
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
