//! Component microbenchmarks: assembler throughput, raw simulator
//! speed (simulated cycles per wall second), and the concurrent
//! multithreading machinery.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hirata_bench::run;
use hirata_sim::Config;
use hirata_workloads::raytrace::{raytrace_program, RayTraceParams};
use hirata_workloads::synthetic::{mix_program, MixParams};

fn assembler(c: &mut Criterion) {
    // A representative source: the full ray tracer text is built and
    // assembled from scratch each iteration.
    let params = RayTraceParams { width: 8, height: 8, spheres: 8, seed: 1, shadows: true };
    c.bench_function("assemble-raytracer", |b| b.iter(|| raytrace_program(&params)));
}

fn simulator_speed(c: &mut Criterion) {
    let program = mix_program(&MixParams::default());
    let cycles = run(Config::multithreaded(4), &program).cycles;
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(cycles));
    group.bench_function("mix-4slots-cycles", |b| {
        b.iter(|| run(Config::multithreaded(4), &program))
    });
    group.finish();
}

criterion_group!(benches, assembler, simulator_speed);
criterion_main!(benches);
