//! Mini load harness: N client threads × M submissions against one
//! daemon, plus hostile traffic, asserting that no request is dropped
//! or double-executed and that failures stay isolated.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use hirata_serve::client::{fetch_stats, shutdown, submit, Mode, SubmitRequest};
use hirata_serve::json::Json;
use hirata_serve::server::{ServeConfig, Server};

const CLIENTS: usize = 4;
const SUBMISSIONS_PER_CLIENT: usize = 3;

const PROGRAM: &str = "
    fastfork
    lpid r1
    mul  r2, r1, r1
    sw   r2, 100(r1)
    lw   r3, 100(r1)
    add  r4, r3, r2
    sw   r4, 200(r1)
    halt
";

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "hirata-load-{label}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn concurrent_clients_all_complete() {
    let cache = Scratch::new("cache");
    let traces = Scratch::new("traces");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        http_workers: CLIENTS,
        sim_workers: Some(2),
        cache_dir: Some(cache.0.clone()),
        no_cache: false,
        cache_budget: None,
        trace_dir: traces.0.clone(),
        quiet: true,
    };
    let (addr, handle) = Server::spawn(config).expect("daemon boots");
    let addr = addr.to_string();

    // Each client hammers its own slot count so the grids overlap on
    // the ls axis (shared cache keys) but differ on the slots axis.
    let mut clients = Vec::new();
    for client in 0..CLIENTS {
        let addr = addr.clone();
        clients.push(thread::spawn(move || {
            let mut outcomes = Vec::new();
            for round in 0..SUBMISSIONS_PER_CLIENT {
                let request = SubmitRequest {
                    name: format!("client{client}.s"),
                    program: PROGRAM.into(),
                    slots: vec![1, client + 2],
                    ls: vec![1, 2],
                    mode: if round % 2 == 0 { Mode::Pool } else { Mode::Interleaved },
                    timeout_secs: Some(60),
                    trace: false,
                };
                let outcome =
                    submit(&addr, &request, &mut |_, _| {}).expect("submission completes");
                outcomes.push(outcome);
            }
            outcomes
        }));
    }

    let mut reference: Option<Vec<_>> = None;
    for client in clients {
        let outcomes = client.join().expect("client thread");
        assert_eq!(outcomes.len(), SUBMISSIONS_PER_CLIENT, "a submission was dropped");
        for outcome in &outcomes {
            // Complete, duplicate-free, all-successful result set.
            assert_eq!(outcome.rows.len(), 4, "grid rows were dropped");
            let mut indices: Vec<usize> = outcome.rows.iter().map(|r| r.index).collect();
            indices.dedup();
            assert_eq!(indices, vec![0, 1, 2, 3], "rows duplicated or out of order");
            assert_eq!(outcome.failed, 0);
            for row in &outcome.rows {
                assert!(row.outcome.is_ok(), "grid point failed under load: {:?}", row);
            }
        }
        // Rounds 2.. of every client resubmit round 0's grid (modes
        // alternate but hash identically), so the daemon must answer
        // them without re-simulating — double execution would show up
        // here as executed > 0.
        for outcome in &outcomes[1..] {
            assert_eq!(outcome.executed, 0, "a cached grid point was re-executed");
            assert_eq!(outcome.cache_hits, 4);
        }
        // The slot-1 rows are shared across every client; they must
        // agree on the numbers.
        let slot1: Vec<_> = outcomes[0]
            .rows
            .iter()
            .filter(|r| r.slots == 1)
            .map(|r| (r.ls, r.key.clone(), r.outcome.clone()))
            .collect();
        match &reference {
            None => reference = Some(slot1),
            Some(want) => assert_eq!(&slot1, want, "clients disagree on shared grid points"),
        }
    }

    // Totals: 12 submissions, 48 grid-point answers, zero failures.
    let stats = fetch_stats(&addr).expect("stats");
    let total = (CLIENTS * SUBMISSIONS_PER_CLIENT) as u64;
    assert_eq!(stats.get("submissions").and_then(Json::as_u64), Some(total));
    let run = stats.get("jobs_run").and_then(Json::as_u64).expect("jobs_run");
    let cached = stats.get("jobs_cached").and_then(Json::as_u64).expect("jobs_cached");
    assert_eq!(run + cached, total * 4, "grid points dropped or double-counted");
    assert_eq!(stats.get("jobs_failed").and_then(Json::as_u64), Some(0));
    // 5 distinct slot counts × 2 ls variants = at most 10 distinct
    // simulations; concurrent first-round misses may race the same
    // key, but never past one execution per submission row.
    assert!(run >= 10 && run <= total * 4 - cached, "implausible execution count: {run}");

    shutdown(&addr).expect("shutdown");
    handle.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn hostile_and_failing_traffic_is_isolated() {
    let cache = Scratch::new("cache");
    let traces = Scratch::new("traces");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        http_workers: 2,
        sim_workers: Some(2),
        cache_dir: Some(cache.0.clone()),
        no_cache: false,
        cache_budget: None,
        trace_dir: traces.0.clone(),
        quiet: true,
    };
    let (addr, handle) = Server::spawn(config).expect("daemon boots");
    let addr = addr.to_string();

    // Garbage bytes on the socket must not take a worker down.
    for garbage in
        [&b"\x00\x01\x02\x03"[..], b"GET", b"POST /submit HTTP/1.1\r\nContent-Length: zz\r\n\r\n"]
    {
        let mut stream = TcpStream::connect(&addr).expect("connects");
        stream.write_all(garbage).expect("writes");
        drop(stream);
    }
    // A client that sends a valid head then hangs up mid-body.
    {
        let mut stream = TcpStream::connect(&addr).expect("connects");
        stream
            .write_all(b"POST /submit HTTP/1.1\r\nContent-Length: 100000\r\n\r\ntruncated")
            .expect("writes");
        drop(stream);
    }

    // A submission whose program cannot assemble is a clean 400.
    let bad = SubmitRequest {
        name: "bad.s".into(),
        program: "this is not assembly".into(),
        slots: vec![1],
        ls: vec![1],
        mode: Mode::Pool,
        timeout_secs: None,
        trace: false,
    };
    let err = submit(&addr, &bad, &mut |_, _| {}).expect_err("must be rejected");
    assert!(err.to_string().contains("assemble"), "unhelpful rejection: {err}");

    // An infinite loop hits its wall-clock timeout, failing its grid
    // point without poisoning the daemon.
    let looping = SubmitRequest {
        name: "loop.s".into(),
        program: "loop: j loop".into(),
        slots: vec![1],
        ls: vec![1],
        mode: Mode::Pool,
        timeout_secs: Some(2),
        trace: false,
    };
    let outcome = submit(&addr, &looping, &mut |_, _| {}).expect("stream completes");
    assert_eq!(outcome.failed, 1);
    assert!(outcome.rows[0].outcome.is_err());

    // The daemon still serves healthy traffic afterwards.
    let good = SubmitRequest {
        name: "good.s".into(),
        program: PROGRAM.into(),
        slots: vec![2],
        ls: vec![1],
        mode: Mode::Pool,
        timeout_secs: None,
        trace: false,
    };
    let outcome = submit(&addr, &good, &mut |_, _| {}).expect("daemon survived");
    assert_eq!(outcome.failed, 0);
    assert!(outcome.rows[0].outcome.is_ok());

    let stats = fetch_stats(&addr).expect("stats");
    assert_eq!(stats.get("jobs_failed").and_then(Json::as_u64), Some(1));

    shutdown(&addr).expect("shutdown");
    handle.join().expect("daemon thread").expect("clean exit");
}
