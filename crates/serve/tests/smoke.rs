//! End-to-end daemon smoke test: boot `hirata serve` on an ephemeral
//! port, submit a small sweep, and check that
//!
//! * the remote result table is byte-identical to a direct `Lab` run,
//! * a resubmission is answered entirely from the artifact store,
//! * interleaved mode produces the same numbers as pool mode,
//! * results and Chrome traces are servable by content hash,
//! * `/stats` reflects the traffic, and `/shutdown` stops the daemon.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hirata_lab::{Job, Lab};
use hirata_serve::client::{fetch_result, fetch_stats, shutdown, submit, Mode, SubmitRequest};
use hirata_serve::json::Json;
use hirata_serve::server::{ServeConfig, Server};
use hirata_serve::{render_sweep_table, sweep_config, sweep_grid, SweepRow};

/// A multithreaded workload with fork/kill and memory traffic (the
/// Figure 6 shape, shrunk).
const PROGRAM: &str = "
    fastfork
    lpid r1
    mul  r2, r1, r1
    add  r3, r1, r2
    sw   r2, 100(r1)
    sw   r3, 200(r1)
    lw   r4, 100(r1)
    add  r5, r4, r3
    sw   r5, 300(r1)
    halt
";

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique, empty scratch directory (removed by [`Scratch::drop`]).
struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "hirata-serve-{label}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn boot(
    cache: &Scratch,
    traces: &Scratch,
) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        http_workers: 2,
        sim_workers: Some(2),
        cache_dir: Some(cache.0.clone()),
        no_cache: false,
        cache_budget: None,
        trace_dir: traces.0.clone(),
        quiet: true,
    };
    let (addr, handle) = Server::spawn(config).expect("daemon boots");
    (addr.to_string(), handle)
}

fn request(mode: Mode) -> SubmitRequest {
    SubmitRequest {
        name: "prog.s".into(),
        program: PROGRAM.into(),
        slots: vec![1, 2, 4],
        ls: vec![1, 2],
        mode,
        timeout_secs: None,
        trace: false,
    }
}

/// Runs the same sweep directly through a local [`Lab`] and renders
/// the table the CLI would print.
fn direct_table() -> String {
    let program = Arc::new(hirata_asm::assemble(PROGRAM).expect("assembles"));
    let grid = sweep_grid(&[1, 2, 4], &[1, 2]);
    let jobs: Vec<Job> = grid
        .iter()
        .map(|&(slots, ls)| {
            Job::new(
                format!("prog.s s{slots} {ls}LS"),
                sweep_config(slots, ls),
                Arc::clone(&program),
            )
        })
        .collect();
    let engine = Lab::new().quiet().without_cache().with_workers(2);
    let batch = engine.run_batch(jobs);
    let rows: Vec<SweepRow> = grid
        .iter()
        .zip(&batch.results)
        .map(|(&(slots, ls), result)| SweepRow {
            slots,
            ls,
            outcome: match result {
                Ok(out) => Ok((out.stats.cycles, out.stats.instructions)),
                Err(err) => Err(err.to_string()),
            },
        })
        .collect();
    render_sweep_table("prog.s", 2, &rows)
}

fn remote_table(addr: &str, mode: Mode) -> (String, hirata_serve::client::SubmitOutcome) {
    let outcome = submit(addr, &request(mode), &mut |_, _| {}).expect("submission succeeds");
    let rows: Vec<SweepRow> = outcome
        .rows
        .iter()
        .map(|row| SweepRow { slots: row.slots, ls: row.ls, outcome: row.outcome.clone() })
        .collect();
    (render_sweep_table("prog.s", outcome.workers, &rows), outcome)
}

#[test]
fn serve_smoke() {
    let cache = Scratch::new("cache");
    let traces = Scratch::new("traces");
    let (addr, handle) = boot(&cache, &traces);

    // Liveness.
    let stats = fetch_stats(&addr).expect("stats");
    assert_eq!(stats.get("submissions").and_then(Json::as_u64), Some(0));

    // Cold submission: everything simulates, and the table is
    // byte-identical to a direct local run of the same grid.
    let want = direct_table();
    let (cold, outcome) = remote_table(&addr, Mode::Pool);
    assert_eq!(cold, want, "remote table differs from direct run");
    assert_eq!(outcome.executed, 6);
    assert_eq!(outcome.cache_hits, 0);
    assert_eq!(outcome.failed, 0);

    // Warm submission: answered entirely from the artifact store,
    // bytes unchanged.
    let (warm, outcome) = remote_table(&addr, Mode::Pool);
    assert_eq!(warm, want, "cached table differs");
    assert_eq!(outcome.cache_hits, 6);
    assert_eq!(outcome.executed, 0);

    // Interleaved mode steps every config round-robin on one daemon
    // thread; numbers must match. (The grid is warm, so force fresh
    // execution through a disjoint grid point set: use the same grid
    // — cache hits are fine, the daemon answers with stored numbers —
    // plus assert the mode is honored via the header worker count.)
    let outcome_il =
        submit(&addr, &request(Mode::Interleaved), &mut |_, _| {}).expect("interleaved submission");
    assert_eq!(outcome_il.workers, 1, "interleaved mode runs on one lane-stepper");
    for (row, want_row) in outcome_il.rows.iter().zip(&outcome.rows) {
        assert_eq!(row.outcome, want_row.outcome, "interleaved diverged at {:?}", row);
        assert!(row.cached, "warm interleaved point re-simulated");
    }

    // Interleaved execution from a cold store must also reproduce the
    // pool numbers: wipe by pointing at fresh keys via extra slots.
    let mut cold_il = request(Mode::Interleaved);
    cold_il.slots = vec![3];
    let il = submit(&addr, &cold_il, &mut |_, _| {}).expect("cold interleaved");
    assert_eq!(il.executed, 2);
    let mut cold_pool = request(Mode::Pool);
    cold_pool.slots = vec![3];
    let pool = submit(&addr, &cold_pool, &mut |_, _| {}).expect("warm pool");
    assert_eq!(pool.cache_hits, 2, "pool did not reuse interleaved results");
    for (a, b) in il.rows.iter().zip(&pool.rows) {
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.key, b.key, "modes hash the same job differently");
    }

    // Every result is fetchable by its content hash.
    for row in &outcome.rows {
        let (cycles, instructions) = row.outcome.as_ref().expect("row ok");
        let doc = fetch_result(&addr, &row.key).expect("result fetch");
        assert_eq!(doc.get("cycles").and_then(Json::as_u64), Some(*cycles));
        assert_eq!(doc.get("instructions").and_then(Json::as_u64), Some(*instructions));
    }
    assert!(fetch_result(&addr, "0123456789abcdef").is_err(), "unknown key must 404");
    assert!(fetch_result(&addr, "../../etc/passwd").is_err(), "traversal must be rejected");

    // Traced submission: artifacts appear under the trace dir and are
    // servable; tracing re-simulates cached points to get artifacts.
    let mut traced = request(Mode::Pool);
    traced.trace = true;
    traced.slots = vec![1, 2];
    traced.ls = vec![1];
    let outcome = submit(&addr, &traced, &mut |_, _| {}).expect("traced submission");
    assert_eq!(outcome.executed, 2, "tracing must re-simulate to produce artifacts");
    for row in &outcome.rows {
        let trace = fetch_trace(&addr, &row.key).expect("trace fetch");
        assert!(trace.get("traceEvents").is_some(), "not a Chrome trace");
    }

    // Counters add up.
    let stats = fetch_stats(&addr).expect("stats");
    assert_eq!(stats.get("submissions").and_then(Json::as_u64), Some(6));
    assert_eq!(stats.get("jobs_failed").and_then(Json::as_u64), Some(0));
    let cache_stats = stats.get("cache").expect("store enabled");
    assert!(cache_stats.get("entries").and_then(Json::as_u64).unwrap_or(0) >= 8);
    assert!(cache_stats.get("hits").and_then(Json::as_u64).unwrap_or(0) >= 8);

    // Graceful shutdown: the daemon thread exits cleanly.
    shutdown(&addr).expect("shutdown accepted");
    handle.join().expect("daemon thread").expect("daemon exits cleanly");
}

/// Fetches `/trace/{key}` and parses the Chrome trace JSON.
fn fetch_trace(addr: &str, key: &str) -> std::io::Result<Json> {
    use std::io::BufReader;
    use std::net::TcpStream;

    let mut stream = TcpStream::connect(addr)?;
    hirata_serve::http::write_request(&mut stream, "GET", &format!("/trace/{key}"), b"")?;
    let mut reader = BufReader::new(stream);
    let head = hirata_serve::http::read_response_head(&mut reader)?;
    let body = hirata_serve::http::read_body(&mut reader, &head)?;
    if head.status != 200 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("status {}", head.status),
        ));
    }
    Json::parse(std::str::from_utf8(&body).expect("utf8 trace"))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e}")))
}
