//! Property tests for the hand-rolled JSON module: every document the
//! encoder can produce parses back to the identical value — across
//! escaping, nesting, and number edge cases — and re-encoding the
//! parse is byte-identical (the encoder is deterministic, which the
//! artifact-store keys and the CI output diffs rely on).

use hirata_serve::json::Json;
use proptest::prelude::*;

/// Characters chosen to stress the string escaper: quotes,
/// backslashes, the whole escape shorthand set, raw control
/// characters, multi-byte UTF-8, and astral-plane characters that
/// need surrogate pairs in `\u` form.
const TRICKY_CHARS: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{1}', '\u{1f}', 'é',
    '€', '中', '\u{ffff}', '😀', '𝄞',
];

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(TRICKY_CHARS.to_vec()), 0..12)
        .prop_map(|chars| chars.into_iter().collect())
}

/// Finite floats, weighted toward the edge cases that break naive
/// encoders: negative zero, subnormals, extreme magnitudes, and
/// values that need all 17 digits to round-trip.
fn arb_f64() -> BoxedStrategy<f64> {
    prop_oneof![
        proptest::sample::select(vec![
            0.0f64,
            -0.0,
            1.0,
            -1.5,
            0.1,
            1e-308,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            1.7976931348623155e308,
            5e-324,
            std::f64::consts::PI,
        ]),
        // Uniform random bit patterns: every finite float shape,
        // including subnormals; the rare non-finite patterns fall
        // back to a small rational.
        (0u64..u64::MAX).prop_map(|bits| {
            let f = f64::from_bits(bits);
            if f.is_finite() {
                f
            } else {
                (bits % 4096) as f64 / 8.0
            }
        }),
    ]
    .boxed()
}

/// Integers covering the i64 extremes, u64-range values (which the
/// module promotes to floats), and small counters.
fn arb_int() -> BoxedStrategy<Json> {
    prop_oneof![
        proptest::sample::select(vec![
            Json::Int(0),
            Json::Int(-1),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::u64(u64::MAX),
            Json::u64(i64::MAX as u64 + 1),
        ]),
        (-1_000_000i64..1_000_000).prop_map(Json::Int),
    ]
    .boxed()
}

fn arb_json() -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        (0u8..2).prop_map(|b| Json::Bool(b == 1)),
        arb_int(),
        arb_f64().prop_map(Json::Num),
        arb_string().prop_map(Json::Str),
    ]
    .boxed();
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
            (proptest::collection::vec(arb_string(), 0..4), proptest::collection::vec(inner, 0..4))
                .prop_map(|(keys, values)| { Json::Obj(keys.into_iter().zip(values).collect()) }),
        ]
        .boxed()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → parse is the identity on every value the encoder can
    /// produce. (`Num` comparison is exact: the encoder writes enough
    /// digits that parsing returns the same bits.)
    #[test]
    fn encode_parse_round_trips(doc in arb_json()) {
        let text = doc.render();
        let back = Json::parse(&text).unwrap_or_else(|e| panic!("`{text}` failed: {e}"));
        prop_assert_eq!(&back, &doc, "compact round trip of `{}`", text);

        let pretty = doc.render_pretty();
        let back = Json::parse(&pretty).unwrap_or_else(|e| panic!("pretty `{pretty}`: {e}"));
        prop_assert_eq!(&back, &doc, "pretty round trip of `{}`", pretty);
    }

    /// parse → encode → parse is stable: the encoder is a canonical
    /// form, so one round trip reaches a fixed point.
    #[test]
    fn encoding_is_a_fixed_point(doc in arb_json()) {
        let once = Json::parse(&doc.render()).expect("first parse").render();
        let twice = Json::parse(&once).expect("second parse").render();
        prop_assert_eq!(once, twice);
    }

    /// Strings survive independently of context: as bare documents,
    /// as object keys, and nested in arrays.
    #[test]
    fn strings_round_trip_everywhere(s in arb_string()) {
        let bare = Json::Str(s.clone());
        prop_assert_eq!(Json::parse(&bare.render()).expect("bare"), bare);

        let keyed = Json::Obj(vec![(s.clone(), Json::Arr(vec![Json::Str(s.clone())]))]);
        let back = Json::parse(&keyed.render()).expect("keyed");
        prop_assert_eq!(back.get(&s).and_then(Json::as_arr).and_then(|a| a[0].as_str()), Some(s.as_str()));
    }

    /// Integer round trips are exact for the full i64 range — the
    /// simulator's u64 cycle counters must not lose precision on the
    /// wire below 2^63.
    #[test]
    fn integers_are_exact(n in (i64::MIN..i64::MAX)) {
        for n in [n, i64::MIN, i64::MAX, 0, -1] {
            let doc = Json::Int(n);
            prop_assert_eq!(Json::parse(&doc.render()).expect("parses").as_i64(), Some(n));
        }
    }
}
