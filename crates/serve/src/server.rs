//! The `hirata serve` daemon: accept loop, HTTP worker pool, routes.
//!
//! Architecture: a blocking [`TcpListener`] accept loop hands
//! connections to a fixed pool of HTTP worker threads over a channel.
//! Each worker parses one request, routes it, and closes the
//! connection. Simulation work happens on the worker thread itself —
//! either fanned out through the shared [`Lab`] engine (`pool` mode)
//! or round-robin interleaved through a [`MachineBatch`] (`interleaved`
//! mode) — with per-job progress streamed back as chunked ndjson
//! events. Results land in the shared content-addressed
//! [`DiskCache`], so a resubmission is answered without simulating.
//!
//! Routes:
//!
//! | method | path            | reply                                     |
//! |--------|-----------------|-------------------------------------------|
//! | GET    | `/health`       | liveness probe                            |
//! | GET    | `/stats`        | daemon + artifact-store counters          |
//! | POST   | `/submit`       | chunked per-job progress events           |
//! | GET    | `/result/{key}` | cached result for a content hash          |
//! | GET    | `/trace/{key}`  | Chrome trace artifact for a content hash  |
//! | POST   | `/shutdown`     | graceful stop                             |

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use hirata_lab::{
    default_cache_dir, valid_key, DiskCache, Job, JobError, JobOutput, JobResult, Lab,
};
use hirata_sim::{LaneError, Machine, MachineBatch, DEFAULT_STRIDE};

use crate::http::{
    finish_chunked, read_request, start_chunked, write_chunk, write_response, Request,
};
use crate::json::Json;
use crate::{sweep_config, sweep_grid};

/// Per-connection socket read timeout: a stalled client must not pin
/// an HTTP worker forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// HTTP worker threads (concurrent connections served).
    pub http_workers: usize,
    /// Simulation worker threads per pool-mode submission; `None`
    /// uses one per available CPU.
    pub sim_workers: Option<usize>,
    /// Artifact-store directory; `None` uses the lab default
    /// (`$HIRATA_LAB_CACHE` or `target/lab-cache`).
    pub cache_dir: Option<PathBuf>,
    /// Disables the artifact store entirely.
    pub no_cache: bool,
    /// LRU byte budget for the artifact store.
    pub cache_budget: Option<u64>,
    /// Directory for Chrome trace artifacts of traced submissions.
    pub trace_dir: PathBuf,
    /// Silences the startup line.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            http_workers: 4,
            sim_workers: None,
            cache_dir: None,
            no_cache: false,
            cache_budget: None,
            trace_dir: PathBuf::from("target/serve-traces"),
            quiet: false,
        }
    }
}

/// Shared daemon state: the execution engines, the artifact store,
/// and the metrics counters.
struct AppState {
    /// Engine for plain submissions.
    lab: Lab,
    /// Engine for traced submissions (same cache, same workers, plus
    /// a trace directory — kept separate so untraced batches never
    /// pay for artifact generation).
    lab_traced: Lab,
    cache: Option<DiskCache>,
    trace_dir: PathBuf,
    addr: SocketAddr,
    started: Instant,
    requests: AtomicU64,
    submissions: AtomicU64,
    jobs_run: AtomicU64,
    jobs_cached: AtomicU64,
    jobs_failed: AtomicU64,
    shutdown: AtomicBool,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    http_workers: usize,
    quiet: bool,
}

impl Server {
    /// Binds the listener and builds the shared state; the daemon is
    /// not serving until [`Server::run`].
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let cache = if config.no_cache {
            None
        } else {
            let dir = config.cache_dir.clone().unwrap_or_else(default_cache_dir);
            let mut cache = DiskCache::open(dir)?;
            if let Some(budget) = config.cache_budget {
                cache = cache.with_byte_budget(budget);
            }
            Some(cache)
        };

        let mut lab = Lab::new().quiet();
        if let Some(workers) = config.sim_workers {
            lab = lab.with_workers(workers);
        }
        lab = match &cache {
            Some(cache) => lab.with_cache(cache.clone()),
            None => lab.without_cache(),
        };
        let mut lab_traced = Lab::new().quiet().with_trace_dir(&config.trace_dir);
        if let Some(workers) = config.sim_workers {
            lab_traced = lab_traced.with_workers(workers);
        }
        lab_traced = match &cache {
            Some(cache) => lab_traced.with_cache(cache.clone()),
            None => lab_traced.without_cache(),
        };

        let state = Arc::new(AppState {
            lab,
            lab_traced,
            cache,
            trace_dir: config.trace_dir,
            addr,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            submissions: AtomicU64::new(0),
            jobs_run: AtomicU64::new(0),
            jobs_cached: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        Ok(Server {
            listener,
            state,
            http_workers: config.http_workers.max(1),
            quiet: config.quiet,
        })
    }

    /// The bound address (resolves the port when binding to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Runs the accept loop until a `POST /shutdown` arrives. Blocks
    /// the calling thread; use [`Server::spawn`] for a background
    /// daemon.
    pub fn run(self) -> io::Result<()> {
        if !self.quiet {
            eprintln!("[serve] listening on {}", self.state.addr);
        }
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.http_workers);
        for _ in 0..self.http_workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            workers.push(thread::spawn(move || loop {
                // Holding the lock only while receiving keeps the
                // other workers free to pick up the next connection.
                let conn = { rx.lock().expect("receiver lock").recv() };
                match conn {
                    Ok(mut stream) => handle_connection(&state, &mut stream),
                    Err(_) => break, // acceptor gone: drain complete
                }
            }));
        }

        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                // A send can only fail if every worker died; that is
                // a bug worth surfacing, not swallowing.
                Ok(stream) => tx.send(stream).expect("http workers alive"),
                Err(_) => continue,
            }
        }
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        if !self.quiet {
            eprintln!("[serve] shut down");
        }
        Ok(())
    }

    /// Binds and serves on a background thread; returns the bound
    /// address and the join handle.
    pub fn spawn(
        config: ServeConfig,
    ) -> io::Result<(SocketAddr, thread::JoinHandle<io::Result<()>>)> {
        let server = Server::bind(config)?;
        let addr = server.local_addr();
        Ok((addr, thread::spawn(move || server.run())))
    }
}

/// Builds a JSON object from label/value pairs.
fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn respond_json(stream: &mut TcpStream, status: u16, body: &Json) -> io::Result<()> {
    write_response(stream, status, "application/json", body.render().as_bytes())
}

fn respond_error(stream: &mut TcpStream, status: u16, msg: &str) {
    let body = obj(vec![("error", Json::Str(msg.to_string()))]);
    let _ = respond_json(stream, status, &body);
}

/// Parses, routes, and answers one connection.
fn handle_connection(state: &AppState, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match read_request(stream) {
        Ok(request) => request,
        Err(e) => {
            respond_error(stream, 400, &format!("bad request: {e}"));
            return;
        }
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let body =
                obj(vec![("ok", Json::Bool(true)), ("service", Json::Str("hirata-serve".into()))]);
            let _ = respond_json(stream, 200, &body);
        }
        ("GET", "/stats") => {
            let _ = respond_json(stream, 200, &stats_json(state));
        }
        ("POST", "/submit") => handle_submit(state, stream, &request),
        ("GET", path) if path.starts_with("/result/") => {
            handle_result(state, stream, &path["/result/".len()..]);
        }
        ("GET", path) if path.starts_with("/trace/") => {
            handle_trace(state, stream, &path["/trace/".len()..]);
        }
        ("POST", "/shutdown") => {
            let _ = respond_json(stream, 200, &obj(vec![("ok", Json::Bool(true))]));
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the blocking acceptor; it re-checks the flag on
            // the next connection and exits before dispatching it.
            let _ = TcpStream::connect(state.addr);
        }
        ("GET" | "POST", _) => respond_error(stream, 404, "no such route"),
        _ => respond_error(stream, 405, "method not allowed"),
    }
}

fn stats_json(state: &AppState) -> Json {
    let mut pairs = vec![
        ("uptime_secs", Json::u64(state.started.elapsed().as_secs())),
        ("sim_workers", Json::u64(state.lab.workers() as u64)),
        ("requests", Json::u64(state.requests.load(Ordering::Relaxed))),
        ("submissions", Json::u64(state.submissions.load(Ordering::Relaxed))),
        ("jobs_run", Json::u64(state.jobs_run.load(Ordering::Relaxed))),
        ("jobs_cached", Json::u64(state.jobs_cached.load(Ordering::Relaxed))),
        ("jobs_failed", Json::u64(state.jobs_failed.load(Ordering::Relaxed))),
    ];
    match &state.cache {
        Some(cache) => {
            let stats = cache.stats();
            let budget = match cache.byte_budget() {
                Some(bytes) => Json::u64(bytes),
                None => Json::Null,
            };
            pairs.push((
                "cache",
                obj(vec![
                    ("dir", Json::Str(cache.dir().display().to_string())),
                    ("hits", Json::u64(stats.hits)),
                    ("misses", Json::u64(stats.misses)),
                    ("stores", Json::u64(stats.stores)),
                    ("evictions", Json::u64(stats.evictions)),
                    ("bytes", Json::u64(stats.bytes)),
                    ("entries", Json::u64(stats.entries)),
                    ("budget", budget),
                ]),
            ));
        }
        None => pairs.push(("cache", Json::Null)),
    }
    obj(pairs)
}

/// A validated `/submit` request.
struct SubmitSpec {
    name: String,
    program: Arc<hirata_isa::Program>,
    grid: Vec<(usize, usize)>,
    timeout: Duration,
    interleaved: bool,
    trace: bool,
}

fn parse_submit(body: &[u8]) -> Result<SubmitSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("bad json: {e}"))?;
    let source = doc
        .get("program")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field `program`".to_string())?;
    let name = doc.get("name").and_then(Json::as_str).unwrap_or("submitted").to_string();

    let list = |field: &str, default: Vec<usize>| -> Result<Vec<usize>, String> {
        match doc.get(field) {
            None => Ok(default),
            Some(value) => value
                .as_arr()
                .ok_or_else(|| format!("`{field}` must be an array"))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| format!("`{field}` entries must be numbers"))
                })
                .collect(),
        }
    };
    let slots = list("slots", vec![1, 2, 4, 8])?;
    let ls = list("ls", vec![1])?;
    if slots.is_empty() || slots.contains(&0) {
        return Err("`slots` needs positive counts".into());
    }
    if ls.is_empty() || ls.iter().any(|&n| n != 1 && n != 2) {
        return Err("`ls` entries must be 1 or 2".into());
    }

    let interleaved = match doc.get("mode").and_then(Json::as_str) {
        None | Some("pool") => false,
        Some("interleaved") => true,
        Some(other) => return Err(format!("unknown mode `{other}`")),
    };
    let trace = doc.get("trace").and_then(Json::as_bool).unwrap_or(false);
    if trace && interleaved {
        return Err("trace capture requires pool mode".into());
    }
    let timeout = match doc.get("timeout_secs") {
        None => hirata_lab::DEFAULT_TIMEOUT,
        Some(v) => Duration::from_secs(
            v.as_u64().ok_or_else(|| "`timeout_secs` must be a number".to_string())?,
        ),
    };

    let program =
        hirata_asm::assemble(source).map_err(|e| format!("program does not assemble: {e}"))?;
    Ok(SubmitSpec {
        name,
        program: Arc::new(program),
        grid: sweep_grid(&slots, &ls),
        timeout,
        interleaved,
        trace,
    })
}

/// One per-job progress event on the wire.
#[allow(clippy::too_many_arguments)]
fn job_event(
    index: usize,
    slots: usize,
    ls: usize,
    key: &str,
    cached: bool,
    result: &JobResult,
    finished: usize,
    total: usize,
) -> Json {
    let mut pairs = vec![
        ("event", Json::Str("job".into())),
        ("index", Json::u64(index as u64)),
        ("slots", Json::u64(slots as u64)),
        ("ls", Json::u64(ls as u64)),
        ("key", Json::Str(key.to_string())),
        ("cached", Json::Bool(cached)),
        ("finished", Json::u64(finished as u64)),
        ("total", Json::u64(total as u64)),
    ];
    match result {
        Ok(output) => {
            pairs.push(("ok", Json::Bool(true)));
            pairs.push(("cycles", Json::u64(output.stats.cycles)));
            pairs.push(("instructions", Json::u64(output.stats.instructions)));
        }
        Err(err) => {
            pairs.push(("ok", Json::Bool(false)));
            pairs.push(("error", Json::Str(err.to_string())));
        }
    }
    obj(pairs)
}

fn send_event(stream: &mut TcpStream, ok: &mut bool, event: &Json) {
    if !*ok {
        return;
    }
    let mut line = event.render();
    line.push('\n');
    // A client that hangs up mid-stream stops receiving events, but
    // the batch runs to completion so its results still land in the
    // artifact store.
    if write_chunk(stream, line.as_bytes()).is_err() {
        *ok = false;
    }
}

fn handle_submit(state: &AppState, stream: &mut TcpStream, request: &Request) {
    let spec = match parse_submit(&request.body) {
        Ok(spec) => spec,
        Err(msg) => {
            respond_error(stream, 400, &msg);
            return;
        }
    };
    state.submissions.fetch_add(1, Ordering::Relaxed);

    let jobs: Vec<Job> = spec
        .grid
        .iter()
        .map(|&(slots, ls)| {
            Job::new(
                format!("{} s{slots} {ls}LS", spec.name),
                sweep_config(slots, ls),
                Arc::clone(&spec.program),
            )
            .with_timeout(spec.timeout)
        })
        .collect();
    let total = jobs.len();

    if start_chunked(stream, 200, "application/x-ndjson").is_err() {
        return;
    }
    let mut stream_ok = true;
    let accepted = obj(vec![
        ("event", Json::Str("accepted".into())),
        ("total", Json::u64(total as u64)),
        ("workers", Json::u64(if spec.interleaved { 1 } else { state.lab.workers() as u64 })),
        ("mode", Json::Str(if spec.interleaved { "interleaved".into() } else { "pool".into() })),
    ]);
    send_event(stream, &mut stream_ok, &accepted);

    let (executed, cache_hits, failed) = if spec.interleaved {
        run_interleaved(state, stream, &mut stream_ok, &spec, jobs)
    } else {
        let lab = if spec.trace { &state.lab_traced } else { &state.lab };
        let grid = &spec.grid;
        let batch = lab.run_batch_observed(jobs, &mut |summary| {
            let (slots, ls) = grid[summary.index];
            let event = job_event(
                summary.index,
                slots,
                ls,
                summary.key,
                summary.cached,
                summary.result,
                summary.finished,
                summary.total,
            );
            send_event(stream, &mut stream_ok, &event);
        });
        (batch.report.executed, batch.report.cache_hits, batch.report.failed)
    };

    state.jobs_run.fetch_add(executed as u64, Ordering::Relaxed);
    state.jobs_cached.fetch_add(cache_hits as u64, Ordering::Relaxed);
    state.jobs_failed.fetch_add(failed as u64, Ordering::Relaxed);

    let done = obj(vec![
        ("event", Json::Str("done".into())),
        ("total", Json::u64(total as u64)),
        ("executed", Json::u64(executed as u64)),
        ("cache_hits", Json::u64(cache_hits as u64)),
        ("failed", Json::u64(failed as u64)),
    ]);
    send_event(stream, &mut stream_ok, &done);
    if stream_ok {
        let _ = finish_chunked(stream);
    }
}

/// Interleaved execution: every grid point steps round-robin on this
/// one thread in a [`MachineBatch`], so N configurations make
/// progress together without N threads. Returns
/// `(executed, cache_hits, failed)`.
fn run_interleaved(
    state: &AppState,
    stream: &mut TcpStream,
    stream_ok: &mut bool,
    spec: &SubmitSpec,
    jobs: Vec<Job>,
) -> (usize, usize, usize) {
    let total = jobs.len();
    let mut finished = 0usize;
    let mut executed = 0usize;
    let mut cache_hits = 0usize;
    let mut failed = 0usize;

    let keys: Vec<String> = jobs.iter().map(Job::content_hash).collect();
    let mut batch = MachineBatch::new();
    // Lane id -> grid index, for jobs that reached the batch.
    let mut lane_index: Vec<(usize, usize)> = Vec::new();

    let report = |stream: &mut TcpStream,
                  index: usize,
                  cached: bool,
                  result: &JobResult,
                  finished: &mut usize,
                  stream_ok: &mut bool| {
        *finished += 1;
        let (slots, ls) = spec.grid[index];
        let event = job_event(index, slots, ls, &keys[index], cached, result, *finished, total);
        send_event(stream, stream_ok, &event);
    };

    for (index, job) in jobs.into_iter().enumerate() {
        if let Some(output) = state.cache.as_ref().and_then(|c| c.load(&keys[index])) {
            cache_hits += 1;
            report(stream, index, true, &Ok(output), &mut finished, stream_ok);
            continue;
        }
        match Machine::with_mem_model(job.config.clone(), &job.program, job.mem.build()) {
            Ok(machine) => {
                let lane = batch.insert(machine);
                lane_index.push((lane, index));
            }
            Err(e) => {
                executed += 1;
                failed += 1;
                report(stream, index, false, &Err(JobError::Sim(e)), &mut finished, stream_ok);
            }
        }
    }

    let deadline = Instant::now() + spec.timeout;
    loop {
        let live = batch.step_round(DEFAULT_STRIDE);
        for (lane, outcome) in batch.drain_finished() {
            let index = lane_index
                .iter()
                .find(|&&(l, _)| l == lane)
                .map(|&(_, i)| i)
                .expect("finished lane was inserted");
            executed += 1;
            let result: JobResult = match outcome {
                Ok(machine) => {
                    let output =
                        JobOutput { stats: machine.stats().clone(), mem: machine.mem_stats() };
                    if let Some(cache) = &state.cache {
                        let _ = cache.store(&keys[index], &output);
                    }
                    Ok(output)
                }
                Err(LaneError::Machine(e)) => Err(JobError::Sim(e)),
                Err(LaneError::Panicked(msg)) => Err(JobError::Panicked(msg)),
            };
            if result.is_err() {
                failed += 1;
            }
            report(stream, index, false, &result, &mut finished, stream_ok);
        }
        if live == 0 {
            break;
        }
        if Instant::now() > deadline {
            // Abandon the still-running lanes; each reports a timeout.
            for &(lane, index) in &lane_index {
                if batch.remove(lane).is_some() {
                    executed += 1;
                    failed += 1;
                    let result: JobResult = Err(JobError::Timeout(spec.timeout));
                    report(stream, index, false, &result, &mut finished, stream_ok);
                }
            }
            break;
        }
    }
    (executed, cache_hits, failed)
}

fn handle_result(state: &AppState, stream: &mut TcpStream, key: &str) {
    if !valid_key(key) {
        respond_error(stream, 400, "malformed result key");
        return;
    }
    let Some(cache) = &state.cache else {
        respond_error(stream, 404, "artifact store disabled");
        return;
    };
    match cache.load(key) {
        Some(output) => {
            let body = obj(vec![
                ("key", Json::Str(key.to_string())),
                ("cycles", Json::u64(output.stats.cycles)),
                ("instructions", Json::u64(output.stats.instructions)),
                ("ipc", Json::Num(output.stats.ipc())),
                ("context_switches", Json::u64(output.stats.context_switches)),
                ("threads_killed", Json::u64(output.stats.threads_killed)),
                ("rotations", Json::u64(output.stats.rotations)),
            ]);
            let _ = respond_json(stream, 200, &body);
        }
        None => respond_error(stream, 404, "no such result"),
    }
}

fn handle_trace(state: &AppState, stream: &mut TcpStream, key: &str) {
    if !valid_key(key) {
        respond_error(stream, 400, "malformed trace key");
        return;
    }
    let path = state.trace_dir.join(format!("{key}.json"));
    match std::fs::read(&path) {
        Ok(body) => {
            let _ = write_response(stream, 200, "application/json", &body);
        }
        Err(_) => respond_error(stream, 404, "no such trace"),
    }
}
