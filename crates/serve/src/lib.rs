//! Simulation-as-a-service for the Hirata 1992 reproduction.
//!
//! `hirata serve` boots a long-running daemon that accepts assembled
//! programs plus configuration grids over a hand-rolled HTTP/1.1 +
//! JSON wire protocol (the build environment has no crates.io access,
//! so no tokio/hyper/serde — everything here is `std` only), fans the
//! jobs through the [`hirata_lab`] execution engine, streams per-job
//! progress over chunked responses, and serves results and Chrome
//! traces out of the shared content-addressed artifact store.
//!
//! The sweep-grid construction and result-table rendering live here
//! and are shared by `hirata lab` (direct execution) and
//! `hirata submit` (remote execution), so the two paths produce
//! byte-identical tables — CI diffs them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod server;

use std::fmt::Write as _;

use hirata_isa::FuConfig;
use hirata_sim::Config;

/// The `(slots, ls)` grid points of a sweep, in the canonical order
/// both `hirata lab` and the daemon iterate: load/store count outer,
/// slot count inner.
pub fn sweep_grid(slots_list: &[usize], ls_list: &[usize]) -> Vec<(usize, usize)> {
    let mut grid = Vec::with_capacity(slots_list.len() * ls_list.len());
    for &ls in ls_list {
        for &slots in slots_list {
            grid.push((slots, ls));
        }
    }
    grid
}

/// The simulator configuration for one sweep grid point: the paper's
/// multithreaded machine with one or two load/store units.
pub fn sweep_config(slots: usize, ls: usize) -> Config {
    let fu = if ls == 2 { FuConfig::paper_two_ls() } else { FuConfig::paper_one_ls() };
    Config::multithreaded(slots).with_fu(fu)
}

/// One row of a sweep result table.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Thread-slot count of this grid point.
    pub slots: usize,
    /// Load/store-unit count of this grid point.
    pub ls: usize,
    /// `Ok((cycles, instructions))` or the failure rendering.
    pub outcome: Result<(u64, u64), String>,
}

/// Renders the sweep result table exactly as `hirata lab` prints it.
///
/// `title` is the program path, `workers` the executing engine's
/// worker count. Speedup is relative to the first successful row;
/// IPC is recomputed from the integer cycle and instruction counts so
/// a remote client renders the same bytes as a local run.
pub fn render_sweep_table(title: &str, workers: usize, rows: &[SweepRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}: {} grid points, {workers} workers", rows.len());
    let _ =
        writeln!(out, "{:>6} {:>4} {:>12} {:>7} {:>9}", "slots", "ls", "cycles", "ipc", "speedup");
    let base_cycles = rows.iter().find_map(|r| r.outcome.as_ref().ok().map(|&(c, _)| c));
    for row in rows {
        let (slots, ls) = (row.slots, row.ls);
        match &row.outcome {
            Ok((cycles, instructions)) => {
                let (cycles, instructions) = (*cycles, *instructions);
                let ipc = if cycles == 0 { 0.0 } else { instructions as f64 / cycles as f64 };
                let speedup = base_cycles.map(|b| b as f64 / cycles as f64).unwrap_or(1.0);
                let _ = writeln!(out, "{slots:>6} {ls:>4} {cycles:>12} {ipc:>7.3} {speedup:>9.2}");
            }
            Err(err) => {
                let _ = writeln!(out, "{slots:>6} {ls:>4} {:>12} ({err})", "failed");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_is_ls_outer_slots_inner() {
        assert_eq!(sweep_grid(&[1, 2], &[1, 2]), vec![(1, 1), (2, 1), (1, 2), (2, 2)]);
    }

    #[test]
    fn sweep_config_picks_the_ls_variant() {
        assert_eq!(sweep_config(4, 1).fu, FuConfig::paper_one_ls());
        assert_eq!(sweep_config(4, 2).fu, FuConfig::paper_two_ls());
        assert_eq!(sweep_config(4, 2).thread_slots, 4);
    }

    #[test]
    fn table_renders_fixed_columns_and_speedup() {
        let rows = vec![
            SweepRow { slots: 1, ls: 1, outcome: Ok((100, 80)) },
            SweepRow { slots: 2, ls: 1, outcome: Ok((50, 80)) },
            SweepRow { slots: 4, ls: 1, outcome: Err("boom".into()) },
        ];
        let table = render_sweep_table("p.s", 3, &rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines[0], "p.s: 3 grid points, 3 workers");
        assert_eq!(lines[1], " slots   ls       cycles     ipc   speedup");
        assert_eq!(lines[2], "     1    1          100   0.800      1.00");
        assert_eq!(lines[3], "     2    1           50   1.600      2.00");
        assert_eq!(lines[4], "     4    1       failed (boom)");
    }
}
