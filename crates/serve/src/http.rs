//! Minimal HTTP/1.1 framing over [`std::net::TcpStream`].
//!
//! Only what the serving daemon needs: request parsing with
//! `Content-Length` bodies, fixed-length responses, and chunked
//! transfer encoding for streaming progress events. Every connection
//! carries exactly one request (`Connection: close`), which keeps the
//! state machine trivial and makes worker accounting exact.
//!
//! The client half (used by `hirata submit`) lives here too so the
//! wire format is written and read by the same code.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on an accepted request body; a Figure 6-scale program
/// assembles to a few kilobytes, so 8 MiB is generous headroom while
/// still bounding a misbehaving client.
pub const MAX_BODY_BYTES: u64 = 8 * 1024 * 1024;

/// Upper bound on the request line plus headers.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/result/3fa9c1`; query strings are kept
    /// verbatim (the daemon's routes do not use them).
    pub path: String,
    /// Header map with lowercased names; duplicate headers keep the
    /// last value.
    pub headers: HashMap<String, String>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Reads one line terminated by `\r\n` (or bare `\n`), enforcing the
/// shared head-size budget.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
                }
                break;
            }
            _ => {
                if *budget == 0 {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "header too large"));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 header"))
}

/// Parses headers into a lowercased-name map.
fn read_headers(
    reader: &mut impl BufRead,
    budget: &mut usize,
) -> io::Result<HashMap<String, String>> {
    let mut headers = HashMap::new();
    loop {
        let line = read_line(reader, budget)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed header"))?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
}

/// Reads and parses one request from `stream`.
///
/// Returns `Err` on malformed framing, oversized heads or bodies, or
/// a closed connection.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(&mut reader, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing request target"))?
        .to_string();
    let headers = read_headers(&mut reader, &mut budget)?;

    let mut body = Vec::new();
    if let Some(len) = headers.get("content-length") {
        let len: u64 = len
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        if len > MAX_BODY_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
        }
        body.resize(len as usize, 0);
        reader.read_exact(&mut body)?;
    }
    Ok(Request { method, path, headers, body })
}

/// Writes a complete fixed-length response and flushes.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Begins a chunked response; follow with [`write_chunk`] calls and a
/// final [`finish_chunked`].
pub fn start_chunked(stream: &mut TcpStream, status: u16, content_type: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status_text(status),
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes one non-empty chunk and flushes so the client observes the
/// event immediately (progress streaming is the whole point).
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn finish_chunked(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// The status line and headers of a response, as seen by the client.
#[derive(Debug)]
pub struct ResponseHead {
    /// Numeric status code.
    pub status: u16,
    /// Header map with lowercased names.
    pub headers: HashMap<String, String>,
}

/// Writes one client request (the only method bodies we send are
/// JSON, so the content type is fixed).
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: hirata\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads the response status line and headers, leaving the reader
/// positioned at the body.
pub fn read_response_head(reader: &mut impl BufRead) -> io::Result<ResponseHead> {
    let mut budget = MAX_HEAD_BYTES;
    let status_line = read_line(reader, &mut budget)?;
    let mut parts = status_line.split_whitespace();
    let version = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty status line"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an http response"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status code"))?;
    let headers = read_headers(reader, &mut budget)?;
    Ok(ResponseHead { status, headers })
}

/// Reads one chunk of a chunked response body. Returns `None` at the
/// terminating zero-length chunk.
pub fn read_chunk(reader: &mut impl BufRead) -> io::Result<Option<Vec<u8>>> {
    let mut budget = MAX_HEAD_BYTES;
    let size_line = read_line(reader, &mut budget)?;
    let size_hex = size_line.split(';').next().unwrap_or("").trim();
    let size = usize::from_str_radix(size_hex, 16)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
    if size as u64 > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "chunk too large"));
    }
    let mut data = vec![0u8; size];
    reader.read_exact(&mut data)?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf)?;
    if &crlf != b"\r\n" {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "missing chunk terminator"));
    }
    if size == 0 {
        return Ok(None);
    }
    Ok(Some(data))
}

/// Reads a fixed-length body according to the response headers.
pub fn read_body(reader: &mut impl BufRead, head: &ResponseHead) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    if let Some(len) = head.headers.get("content-length") {
        let len: u64 = len
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        if len > MAX_BODY_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
        }
        body.resize(len as usize, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    /// Round-trips one request/response pair over a real socket so the
    /// server-side writer and client-side reader are tested against
    /// each other.
    #[test]
    fn request_and_fixed_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let server = thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accepts");
            let req = read_request(&mut conn).expect("parses");
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/submit");
            assert_eq!(req.body, b"{\"x\":1}");
            assert_eq!(
                req.headers.get("content-type").map(String::as_str),
                Some("application/json")
            );
            write_response(&mut conn, 200, "application/json", b"{\"ok\":true}").expect("writes");
        });

        let mut stream = TcpStream::connect(addr).expect("connects");
        write_request(&mut stream, "POST", "/submit", b"{\"x\":1}").expect("sends");
        let mut reader = BufReader::new(stream);
        let head = read_response_head(&mut reader).expect("head");
        assert_eq!(head.status, 200);
        let body = read_body(&mut reader, &head).expect("body");
        assert_eq!(body, b"{\"ok\":true}");
        server.join().expect("server thread");
    }

    #[test]
    fn chunked_stream_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let server = thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accepts");
            let _ = read_request(&mut conn).expect("parses");
            start_chunked(&mut conn, 200, "application/x-ndjson").expect("head");
            write_chunk(&mut conn, b"first\n").expect("chunk");
            write_chunk(&mut conn, b"second\n").expect("chunk");
            finish_chunked(&mut conn).expect("finish");
        });

        let mut stream = TcpStream::connect(addr).expect("connects");
        write_request(&mut stream, "GET", "/stream", b"").expect("sends");
        let mut reader = BufReader::new(stream);
        let head = read_response_head(&mut reader).expect("head");
        assert_eq!(head.headers.get("transfer-encoding").map(String::as_str), Some("chunked"));
        let mut seen = Vec::new();
        while let Some(chunk) = read_chunk(&mut reader).expect("chunk") {
            seen.extend_from_slice(&chunk);
        }
        assert_eq!(seen, b"first\nsecond\n");
        server.join().expect("server thread");
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw =
            format!("POST /submit HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let mut reader = Cursor::new(raw.into_bytes());
        let mut budget = MAX_HEAD_BYTES;
        let _ = read_line(&mut reader, &mut budget).expect("request line");
        let headers = read_headers(&mut reader, &mut budget).expect("headers");
        let len: u64 = headers["content-length"].parse().expect("parses");
        assert!(len > MAX_BODY_BYTES);
    }

    #[test]
    fn malformed_chunk_size_is_an_error() {
        let mut reader = Cursor::new(b"zz\r\n".to_vec());
        assert!(read_chunk(&mut reader).is_err());
    }
}
