//! A minimal JSON encode/decode module.
//!
//! The build environment has no crates.io access, so the daemon's
//! wire format is hand-rolled: a [`Json`] value tree, a recursive
//! descent parser with a depth limit, and a deterministic encoder
//! (object keys keep insertion order, so responses are byte-stable).
//!
//! Integers and floats are kept apart — simulation counters are
//! `u64`-sized and must survive a round trip exactly, which `f64`
//! cannot guarantee above 2^53.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the encoder.
    Obj(Vec<(String, Json)>),
}

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A parse failure: byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an integer value from a `u64` counter (the common case
    /// for simulation statistics). Values above `i64::MAX` — which no
    /// real counter reaches — degrade to the nearest float.
    pub fn u64(v: u64) -> Json {
        match i64::try_from(v) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::Num(v as f64),
        }
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (exactly one value plus whitespace).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Encodes the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Encodes the value with two-space indentation (for humans:
    /// `hirata stats`).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Non-finite floats have no JSON spelling; encode as null (they
/// never appear in simulation statistics). The `{:?}` form is used
/// because it keeps a fraction or exponent marker on integral values
/// (`1.0`, `1e300`), so a float never re-parses as [`Json::Int`].
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: require the paired
                                // `\uXXXX` low surrogate.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?
                            } else if (0xdc00..0xe000).contains(&unit) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(unit).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Decode one UTF-8 scalar from the (valid, since
                    // input is &str) byte stream.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let unit = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let first_digit = self.pos;
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[first_digit] == b'0' {
            return Err(self.err("leading zero"));
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Json::parse(text).unwrap_or_else(|e| panic!("{text:?}: {e}"))
    }

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Int(0)),
            ("-1", Json::Int(-1)),
            ("9223372036854775807", Json::Int(i64::MAX)),
            ("-9223372036854775808", Json::Int(i64::MIN)),
            ("1.5", Json::Num(1.5)),
            ("-2.25", Json::Num(-2.25)),
            ("\"\"", Json::Str(String::new())),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text), value, "{text}");
            assert_eq!(parse(&value.render()), value, "{text}");
        }
    }

    #[test]
    fn i64_overflow_becomes_float() {
        assert_eq!(parse("9223372036854775808"), Json::Num(9.223372036854776e18));
    }

    #[test]
    fn exponents_parse_as_floats() {
        assert_eq!(parse("1e3"), Json::Num(1000.0));
        assert_eq!(parse("-1.5E-2"), Json::Num(-0.015));
        assert_eq!(parse("2E+1"), Json::Num(20.0));
    }

    #[test]
    fn string_escapes_round_trip() {
        let ugly = "a\"b\\c\nd\te\rf\u{08}g\u{0c}h\u{1}i/λ😀";
        let value = Json::Str(ugly.into());
        assert_eq!(parse(&value.render()), value);
        assert_eq!(parse(r#""\u0041\u00e9\ud83d\ude00""#), Json::Str("Aé😀".into()));
    }

    #[test]
    fn nesting_round_trips() {
        let value = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Int(1), Json::Null, Json::Str("x".into())])),
            ("b".into(), Json::Obj(vec![("c".into(), Json::Bool(false))])),
            ("empty arr".into(), Json::Arr(vec![])),
            ("empty obj".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(parse(&value.render()), value);
        assert_eq!(parse(&value.render_pretty()), value);
    }

    #[test]
    fn whitespace_is_tolerated() {
        assert_eq!(parse(" { \"a\" :\t[ 1 ,\n2 ] } "), parse("{\"a\":[1,2]}"));
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(80) + &"]".repeat(80);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "tru",
            "01",
            "-",
            "1.",
            "1e",
            "\"\\x\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\udc00\"",
            "\"unterminated",
            "\u{1}",
            "1 2",
            "nullx",
            "\"a\u{0}b\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_constructor_handles_extremes() {
        assert_eq!(Json::u64(0), Json::Int(0));
        assert_eq!(Json::u64(i64::MAX as u64), Json::Int(i64::MAX));
        assert!(matches!(Json::u64(u64::MAX), Json::Num(_)));
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
