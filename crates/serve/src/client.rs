//! The `hirata submit` client: send a program and a sweep grid to a
//! running daemon and consume its chunked progress stream.

use std::io::{self, BufReader};
use std::net::TcpStream;

use crate::http::{read_body, read_chunk, read_response_head, write_request};
use crate::json::Json;

/// Execution mode of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Fan the grid through the daemon's thread-pool engine.
    Pool,
    /// Round-robin every grid point on one daemon thread via the
    /// batched stepper.
    Interleaved,
}

impl Mode {
    fn wire(self) -> &'static str {
        match self {
            Mode::Pool => "pool",
            Mode::Interleaved => "interleaved",
        }
    }
}

/// A submission: program source plus the sweep grid.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Display name (typically the program path); engine-side only.
    pub name: String,
    /// Assembly source text.
    pub program: String,
    /// Thread-slot counts to sweep.
    pub slots: Vec<usize>,
    /// Load/store-unit counts to sweep (1 and/or 2).
    pub ls: Vec<usize>,
    /// Execution mode.
    pub mode: Mode,
    /// Per-job wall-clock timeout in seconds (`None` for the daemon
    /// default).
    pub timeout_secs: Option<u64>,
    /// Ask the daemon to record Chrome trace artifacts (pool mode
    /// only).
    pub trace: bool,
}

impl SubmitRequest {
    fn render(&self) -> String {
        let nums = |ns: &[usize]| Json::Arr(ns.iter().map(|&n| Json::u64(n as u64)).collect());
        let mut pairs = vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("program".to_string(), Json::Str(self.program.clone())),
            ("slots".to_string(), nums(&self.slots)),
            ("ls".to_string(), nums(&self.ls)),
            ("mode".to_string(), Json::Str(self.mode.wire().to_string())),
            ("trace".to_string(), Json::Bool(self.trace)),
        ];
        if let Some(secs) = self.timeout_secs {
            pairs.push(("timeout_secs".to_string(), Json::u64(secs)));
        }
        Json::Obj(pairs).render()
    }
}

/// One per-job event from the daemon's progress stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRow {
    /// Grid-point index in submission order.
    pub index: usize,
    /// Thread-slot count.
    pub slots: usize,
    /// Load/store-unit count.
    pub ls: usize,
    /// Content hash of the job (the artifact-store key).
    pub key: String,
    /// Whether the daemon answered this point from the cache.
    pub cached: bool,
    /// `Ok((cycles, instructions))` or the daemon's failure text.
    pub outcome: Result<(u64, u64), String>,
}

/// The complete outcome of one submission.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOutcome {
    /// The daemon engine's worker count (renders into the table
    /// header exactly like a local `--jobs N`).
    pub workers: usize,
    /// One row per grid point, sorted back into submission order.
    pub rows: Vec<SubmitRow>,
    /// Grid points answered from the artifact store.
    pub cache_hits: usize,
    /// Grid points actually simulated.
    pub executed: usize,
    /// Grid points that failed.
    pub failed: usize,
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Accepts `HOST:PORT`, `:PORT`, or a bare port number; bare and
/// host-less forms default to loopback.
pub fn normalize_addr(addr: &str) -> String {
    if addr.chars().all(|c| c.is_ascii_digit()) && !addr.is_empty() {
        return format!("127.0.0.1:{addr}");
    }
    if let Some(port) = addr.strip_prefix(':') {
        return format!("127.0.0.1:{port}");
    }
    addr.to_string()
}

/// Submits a sweep and consumes the event stream. `progress` fires
/// after every per-job event with `(finished, total)`.
pub fn submit(
    addr: &str,
    request: &SubmitRequest,
    progress: &mut dyn FnMut(usize, usize),
) -> io::Result<SubmitOutcome> {
    let mut stream = TcpStream::connect(normalize_addr(addr))?;
    write_request(&mut stream, "POST", "/submit", request.render().as_bytes())?;
    let mut reader = BufReader::new(stream);
    let head = read_response_head(&mut reader)?;
    if head.status != 200 {
        let body = read_body(&mut reader, &head)?;
        return Err(bad_data(error_text(&body, head.status)));
    }

    let mut workers = 0usize;
    let mut rows: Vec<SubmitRow> = Vec::new();
    let mut cache_hits = 0usize;
    let mut executed = 0usize;
    let mut failed = 0usize;
    let mut saw_done = false;
    let mut buffer = String::new();
    while let Some(chunk) = read_chunk(&mut reader)? {
        buffer
            .push_str(std::str::from_utf8(&chunk).map_err(|_| bad_data("non-utf8 event stream"))?);
        // Events are newline-delimited; a chunk usually carries whole
        // lines but the framing does not promise it.
        while let Some(pos) = buffer.find('\n') {
            let line: String = buffer.drain(..=pos).collect();
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let event = Json::parse(line).map_err(|e| bad_data(format!("bad event: {e}")))?;
            match event.get("event").and_then(Json::as_str) {
                Some("accepted") => {
                    workers = event
                        .get("workers")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad_data("accepted event without workers"))?
                        as usize;
                }
                Some("job") => {
                    let row = parse_job_event(&event)?;
                    let total = event.get("total").and_then(Json::as_u64).unwrap_or(0) as usize;
                    if row.cached {
                        cache_hits += 1;
                    } else {
                        executed += 1;
                    }
                    if row.outcome.is_err() {
                        failed += 1;
                    }
                    rows.push(row);
                    progress(rows.len(), total);
                }
                Some("done") => saw_done = true,
                _ => return Err(bad_data("unknown event type")),
            }
        }
    }
    if !saw_done {
        return Err(bad_data("event stream ended before `done`"));
    }
    rows.sort_by_key(|row| row.index);
    Ok(SubmitOutcome { workers, rows, cache_hits, executed, failed })
}

fn parse_job_event(event: &Json) -> io::Result<SubmitRow> {
    let num = |field: &str| {
        event
            .get(field)
            .and_then(Json::as_u64)
            .ok_or_else(|| bad_data(format!("job event without `{field}`")))
    };
    let outcome = if event.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok((num("cycles")?, num("instructions")?))
    } else {
        Err(event.get("error").and_then(Json::as_str).unwrap_or("unknown failure").to_string())
    };
    Ok(SubmitRow {
        index: num("index")? as usize,
        slots: num("slots")? as usize,
        ls: num("ls")? as usize,
        key: event
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_data("job event without `key`"))?
            .to_string(),
        cached: event.get("cached").and_then(Json::as_bool).unwrap_or(false),
        outcome,
    })
}

/// Fetches `/stats` as a parsed JSON document.
pub fn fetch_stats(addr: &str) -> io::Result<Json> {
    let body = simple_get(addr, "/stats")?;
    Json::parse(std::str::from_utf8(&body).map_err(|_| bad_data("non-utf8 stats"))?)
        .map_err(|e| bad_data(format!("bad stats json: {e}")))
}

/// Fetches a cached result document by content hash.
pub fn fetch_result(addr: &str, key: &str) -> io::Result<Json> {
    let body = simple_get(addr, &format!("/result/{key}"))?;
    Json::parse(std::str::from_utf8(&body).map_err(|_| bad_data("non-utf8 result"))?)
        .map_err(|e| bad_data(format!("bad result json: {e}")))
}

/// Asks the daemon to shut down gracefully.
pub fn shutdown(addr: &str) -> io::Result<()> {
    let mut stream = TcpStream::connect(normalize_addr(addr))?;
    write_request(&mut stream, "POST", "/shutdown", b"")?;
    let mut reader = BufReader::new(stream);
    let head = read_response_head(&mut reader)?;
    if head.status != 200 {
        let body = read_body(&mut reader, &head)?;
        return Err(bad_data(error_text(&body, head.status)));
    }
    Ok(())
}

fn simple_get(addr: &str, path: &str) -> io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(normalize_addr(addr))?;
    write_request(&mut stream, "GET", path, b"")?;
    let mut reader = BufReader::new(stream);
    let head = read_response_head(&mut reader)?;
    let body = read_body(&mut reader, &head)?;
    if head.status != 200 {
        return Err(bad_data(error_text(&body, head.status)));
    }
    Ok(body)
}

/// Extracts the daemon's `{"error": ...}` text, falling back to the
/// bare status code.
fn error_text(body: &[u8], status: u16) -> String {
    std::str::from_utf8(body)
        .ok()
        .and_then(|text| Json::parse(text).ok())
        .and_then(|doc| doc.get("error").and_then(|e| e.as_str().map(String::from)))
        .unwrap_or_else(|| format!("server returned status {status}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_forms_normalize_to_loopback() {
        assert_eq!(normalize_addr("8080"), "127.0.0.1:8080");
        assert_eq!(normalize_addr(":8080"), "127.0.0.1:8080");
        assert_eq!(normalize_addr("10.1.2.3:80"), "10.1.2.3:80");
        assert_eq!(normalize_addr("host:80"), "host:80");
    }

    #[test]
    fn submit_request_renders_deterministic_json() {
        let req = SubmitRequest {
            name: "p.s".into(),
            program: "halt".into(),
            slots: vec![1, 2],
            ls: vec![1],
            mode: Mode::Pool,
            timeout_secs: Some(5),
            trace: false,
        };
        assert_eq!(
            req.render(),
            "{\"name\":\"p.s\",\"program\":\"halt\",\"slots\":[1,2],\"ls\":[1],\
             \"mode\":\"pool\",\"trace\":false,\"timeout_secs\":5}"
        );
    }
}
