//! Measures the serving daemon: `/stats` request throughput under
//! concurrent clients, and cold-versus-warm `/submit` latency for the
//! Figure 6 sweep. Prints the table that EXPERIMENTS.md quotes.
//!
//! Run with `cargo run --release -p hirata-serve --example serve_load`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use hirata_serve::client::{fetch_stats, shutdown, submit, Mode, SubmitRequest};
use hirata_serve::server::{ServeConfig, Server};

/// Fallback when the example is run from outside the workspace root.
const PROGRAM: &str = "
    fastfork
    lpid r1
    mul  r2, r1, r1
    add  r3, r1, r2
    sw   r2, 100(r1)
    sw   r3, 200(r1)
    lw   r4, 100(r1)
    add  r5, r4, r3
    sw   r5, 300(r1)
    halt
";

fn request() -> SubmitRequest {
    let program =
        std::fs::read_to_string("examples/asm/fig6_while.s").unwrap_or_else(|_| PROGRAM.into());
    SubmitRequest {
        name: "fig6_while.s".into(),
        program,
        slots: vec![1, 2, 4, 8],
        ls: vec![1, 2],
        mode: Mode::Pool,
        timeout_secs: None,
        trace: false,
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("hirata-serve-load-{}", std::process::id()));
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        http_workers: 4,
        sim_workers: None,
        cache_dir: Some(scratch.join("cache")),
        no_cache: false,
        cache_budget: None,
        trace_dir: scratch.join("traces"),
        quiet: true,
    };
    let (addr, handle) = Server::spawn(config).expect("daemon boots");
    let addr = addr.to_string();

    // --- /stats request throughput, 4 concurrent clients, 2s ---
    let total = AtomicU64::new(0);
    let window = Duration::from_secs(2);
    thread::scope(|scope| {
        for _ in 0..4 {
            let addr = &addr;
            let total = &total;
            scope.spawn(move || {
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < window {
                    fetch_stats(addr).expect("stats");
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
    });
    let rps = total.load(Ordering::Relaxed) as f64 / window.as_secs_f64();

    // --- /submit latency: cold (simulates) vs warm (artifact store) ---
    let cold_start = Instant::now();
    let outcome = submit(&addr, &request(), &mut |_, _| {}).expect("cold submit");
    let cold = cold_start.elapsed();
    assert_eq!(outcome.executed, 8, "expected a cold store");

    let mut warm_samples = Vec::new();
    for _ in 0..20 {
        let start = Instant::now();
        let outcome = submit(&addr, &request(), &mut |_, _| {}).expect("warm submit");
        warm_samples.push(start.elapsed());
        assert_eq!(outcome.cache_hits, 8, "expected a warm store");
    }
    let warm = median(&mut warm_samples);

    println!("serve daemon ({} sim workers, 4 http workers)", outcome.workers);
    println!("  /stats throughput, 4 clients:   {rps:8.0} requests/sec");
    println!("  /submit cold (8 jobs simulate): {:8.1} ms", cold.as_secs_f64() * 1e3);
    println!(
        "  /submit warm (8 cache hits):    {:8.1} ms (median of 20)",
        warm.as_secs_f64() * 1e3
    );
    println!("  warm/cold speedup:              {:8.1}x", cold.as_secs_f64() / warm.as_secs_f64());

    shutdown(&addr).expect("shutdown");
    handle.join().expect("daemon thread").expect("clean exit");
    let _ = std::fs::remove_dir_all(&scratch);
}
