//! Concurrent multithreading (§2.1.3): context frames beyond the
//! thread slots let the processor switch threads on a *data absence
//! trap* instead of idling through a remote DSM access, replaying the
//! outstanding loads from the access requirement buffer on resume.
//!
//! ```text
//! cargo run --release --example concurrent_dsm
//! ```

use hirata::mem::DsmMemory;
use hirata::sim::{Config, Machine};
use hirata::workloads::synthetic::{
    dsm_chase_program, dsm_chase_reference, DsmChaseParams, OUT_BASE, REMOTE_BASE,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = 4;
    let remote_latency = 200;
    let params = DsmChaseParams::default();
    let program = dsm_chase_program(threads, &params);
    println!(
        "up to {threads} resident threads x {} remote loads each, {remote_latency}-cycle remote latency, 1 thread slot\n",
        params.iters
    );
    println!("{:>7} {:>10} {:>14} {:>9}", "frames", "cycles", "cycles/thread", "switches");
    for frames in 1..=threads {
        // One resident thread per context frame (§2.1.3: threads stay
        // resident as long as they fit in the physical frames).
        let mut config = Config::multithreaded(1).with_context_frames(frames);
        config.mem_words = 1 << 16;
        let mut machine = Machine::with_mem_model(
            config,
            &program,
            Box::new(DsmMemory::new(REMOTE_BASE, 2, remote_latency)),
        )?;
        for _ in 1..frames {
            machine.add_thread(0)?;
        }
        let stats = machine.run()?.clone();
        // Every thread's checksum must be exact regardless of how the
        // context switching interleaved them.
        for lp in 0..frames {
            assert_eq!(
                machine.memory().read_i64(OUT_BASE + lp as u64)?,
                dsm_chase_reference(lp, &params),
                "thread {lp} checksum"
            );
        }
        println!(
            "{frames:>7} {:>10} {:>14.0} {:>9}",
            stats.cycles,
            stats.cycles as f64 / frames as f64,
            stats.context_switches
        );
    }
    println!("\nWith one frame the slot waits out every remote access; extra frames\nkeep it busy — the concurrent half of the paper's two multithreading forms.");
    Ok(())
}
