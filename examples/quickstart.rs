//! Quickstart: assemble a small program, run it on the paper's
//! two machines, and compare.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hirata::asm::assemble;
use hirata::isa::FuClass;
use hirata::sim::{Config, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop with a data-dependent recurrence and a branch — the kind
    // of code whose stalls parallel multithreading hides (§1).
    let program = assemble(
        "
        fastfork                ; one thread per thread slot
        lpid r1                 ; who am I?
        nlp  r2                 ; how many of us?
        li   r3, #0             ; acc = 0
        add  r4, r1, #1         ; k = lpid + 1
    loop:
        sle  r5, r4, #64
        beq  r5, #0, done
        mul  r6, r4, r4         ; k^2 (6-cycle multiplier)
        add  r3, r3, r6         ; acc += k^2
        add  r4, r4, r2         ; k += nlp
        j    loop
    done:
        sw   r3, 100(r1)        ; partial sum per thread
        halt
    ",
    )?;

    println!("{}", program.listing());

    let mut results = Vec::new();
    for (name, config) in [
        ("base RISC (Figure 3b)", Config::base_risc()),
        ("multithreaded, 2 slots", Config::multithreaded(2)),
        ("multithreaded, 4 slots", Config::multithreaded(4)),
    ] {
        let slots = config.thread_slots;
        let mut machine = Machine::new(config, &program)?;
        let stats = machine.run()?.clone();
        let total: i64 = (0..slots)
            .map(|lp| machine.memory().read_i64(100 + lp as u64))
            .collect::<Result<Vec<_>, _>>()?
            .iter()
            .sum();
        assert_eq!(total, (1..=64).map(|k: i64| k * k).sum::<i64>());
        println!(
            "{name:<24} {:>8} cycles  IPC {:.2}  int-mul util {:>5.1}%",
            stats.cycles,
            stats.ipc(),
            stats.utilization(FuClass::IntMul)
        );
        results.push(stats.cycles);
    }
    println!(
        "\nspeed-up over the sequential baseline: x{:.2} (2 slots), x{:.2} (4 slots)",
        results[0] as f64 / results[1] as f64,
        results[0] as f64 / results[2] as f64
    );
    Ok(())
}
