//! Render the §3.2 ray-traced scene on machines of growing width and
//! print the image as ASCII art plus the Table 2-style speed-ups.
//!
//! ```text
//! cargo run --release --example render_scene
//! ```

use hirata::isa::FuConfig;
use hirata::sim::{Config, Machine};
use hirata::workloads::raytrace::{raytrace_program, reference_image, RayTraceParams, IMAGE_BASE};

const RAMP: &[u8] = b" .:-=+*#%@";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = RayTraceParams { width: 48, height: 24, spheres: 8, seed: 42, shadows: true };
    let program = raytrace_program(&params);

    // Sequential baseline (Figure 3(b) RISC).
    let mut base = Machine::new(Config::base_risc(), &program)?;
    let base_cycles = base.run()?.cycles;

    // Print the image the baseline produced.
    let max = (0..params.pixels())
        .map(|p| base.memory().read_i64(IMAGE_BASE + p as u64))
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .max()
        .unwrap_or(1)
        .max(1);
    for j in 0..params.height {
        let row: String = (0..params.width)
            .map(|i| {
                let v = base
                    .memory()
                    .read_i64(IMAGE_BASE + (j * params.width + i) as u64)
                    .expect("pixel in range");
                let idx = (v * (RAMP.len() as i64 - 1) / max) as usize;
                RAMP[idx] as char
            })
            .collect();
        println!("{row}");
    }

    // Sanity: the simulated image is bit-identical to the Rust
    // reference ray tracer.
    let reference = reference_image(&params);
    let simulated: Vec<i64> = (0..params.pixels())
        .map(|p| base.memory().read_i64(IMAGE_BASE + p as u64))
        .collect::<Result<_, _>>()?;
    assert_eq!(simulated, reference, "simulator must match the reference tracer");

    println!("\nsequential baseline: {base_cycles} cycles");
    println!("{:>6} {:>6} {:>10} {:>9}", "slots", "L/S", "cycles", "speed-up");
    for slots in [2usize, 4, 8] {
        for (ls, fu) in [(1, FuConfig::paper_one_ls()), (2, FuConfig::paper_two_ls())] {
            let mut m = Machine::new(Config::multithreaded(slots).with_fu(fu), &program)?;
            let cycles = m.run()?.cycles;
            println!("{slots:>6} {ls:>6} {cycles:>10} {:>9.2}", base_cycles as f64 / cycles as f64);
        }
    }
    println!(
        "\n(compare the paper's Table 2: 2.02 at 2 slots, 3.72 at 4, 5.79 at 8 with 2 L/S units)"
    );
    Ok(())
}
