; Token passing around the queue-register ring: each logical processor
; increments the token once; after two full laps LP0 stores it.
;   hirata run examples/asm/ring_token.s --slots 4 --dump 100..101
.text
.entry main
main:
    setrot explicit
    qmap r10, r11
    fastfork
    lpid r1
    nlp  r2
    bne  r1, #0, relay
    ; LP0: inject the token, relay it twice, then store it.
    li   r11, #0
    add  r11, r10, #1    ; lap 1 returns, forward incremented
    add  r3, r10, #1     ; lap 2 returns
    sw   r3, 100(r0)
    halt
relay:
    add  r11, r10, #1    ; first lap
    add  r11, r10, #1    ; second lap
    halt
