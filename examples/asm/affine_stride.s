; Affine strided fill: every logical processor writes an arithmetic
; progression over its private bank. The loop body is built entirely
; from warp-safe instructions (strided store, constant register
; increments, a counted branch), so this example is the loop-warp
; engine's positive control — the steady state is detected, verified,
; and leapt, and `--no-warp` must reproduce it byte for byte.
;   hirata run examples/asm/affine_stride.s --slots 4 --dump 65536..65544
;   hirata trace examples/asm/affine_stride.s --warp-debug
.text
.entry main
main:
    fastfork
    lpid r1
    add  r9, r1, #1
    mul  r9, r9, #65536  ; bank base: 65536 * (lpid + 1)
    li   r8, #3000       ; trip count
    li   r7, #0          ; value: 5*i
loop:
    sw   r7, 0(r9)
    add  r9, r9, #1
    add  r7, r7, #5
    sub  r8, r8, #1
    bne  r8, #0, loop
    halt
