; Iterative Fibonacci: computes fib(0..=20) into memory[100..=120].
; Single-threaded; try it on both pipelines:
;   hirata run examples/asm/fib.s --base
;   hirata run examples/asm/fib.s --slots 1 --trace
.text
.entry main
main:
    li   r1, #0          ; fib(i)
    li   r2, #1          ; fib(i+1)
    li   r3, #0          ; i
loop:
    sw   r1, 100(r3)
    add  r4, r1, r2      ; fib(i+2)
    mv   r1, r2
    mv   r2, r4
    add  r3, r3, #1
    sle  r5, r3, #20
    bne  r5, #0, loop
    halt
