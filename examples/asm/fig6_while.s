; Figure 6 eager while-loop (Hirata et al. 1992, §2.3.3): each
; logical processor runs one iteration of a pointer-chasing loop,
; forwarding ptr->next through the queue ring before the loop
; condition resolves. 20 nodes; tmp goes negative at node 13.
;   hirata run   examples/asm/fig6_while.s --slots 4
;   hirata trace examples/asm/fig6_while.s --slots 4 --format chrome
; Regenerate: cargo run -p hirata-workloads --example gen_fig6

.data
.org 500
consts: .float 0.75, 0.5, 0.1
.org 601
head: .word 1000
.org 1000
.word 5000, 1002
.word 5002, 1004
.word 5004, 1006
.word 5006, 1008
.word 5008, 1010
.word 5010, 1012
.word 5012, 1014
.word 5014, 1016
.word 5016, 1018
.word 5018, 1020
.word 5020, 1022
.word 5022, 1024
.word 5024, 1026
.word 5026, 1028
.word 5028, 1030
.word 5030, 1032
.word 5032, 1034
.word 5034, 1036
.word 5036, 1038
.word 5038, 0
.org 5000
.float 1.2, 0.0
.float 1.1333333333333333, 0.1
.float 1.0666666666666667, 0.2
.float 1.0, 0.30000000000000004
.float 0.9333333333333332, 0.4
.float 0.8666666666666667, 0.5
.float 0.7999999999999999, 0.6000000000000001
.float 0.7333333333333334, 0.7000000000000001
.float 0.6666666666666666, 0.8
.float 0.6, 0.9
.float 0.5333333333333333, 1.0
.float 0.4666666666666666, 1.1
.float 0.3999999999999999, 1.2000000000000002
.float -2.3333333333333335, 1.3
.float 0.2666666666666666, 1.4000000000000001
.float 0.20000000000000004, 1.5
.float 0.1333333333333333, 1.6
.float 0.06666666666666658, 1.7000000000000002
.float 0.0, 1.8
.float -0.06666666666666672, 1.9000000000000001

.text
.entry main
main:
    lf   f20, 500(r0)
    lf   f21, 501(r0)
    lf   f22, 502(r0)
    lif  f30, #0.0
    setrot explicit
    qmap r10, r11
    fastfork
    lpid r1
    bne  r1, #0, recv
    lw   r20, 601(r0)   ; logical processor 0 takes the header
    j    loop
recv:
    mv   r20, r10               ; others receive ptr from the ring
loop:
    beq  r20, #0, offend        ; ptr == NULL
    lw   r11, 1(r20)            ; forward ptr->next to the successor
    lw   r2, 0(r20)             ; (multiple versions of ptr, Figure 7)
    lf   f1, 0(r2)
    lf   f2, 1(r2)
    fmul f3, f20, f1
    fmul f4, f21, f2
    fadd f3, f3, f4
    fadd f3, f3, f22            ; tmp
    fcmplt r3, f3, f30
    bne  r3, #0, brk
    chgpri                      ; acknowledge this iteration
    mv   r20, r10               ; receive the next assigned iteration
    j    loop
brk:
    killothers                  ; waits for the highest priority
    sf   f3, 600(r0)
    halt
offend:
    killothers
    halt
