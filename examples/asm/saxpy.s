; Parallel SAXPY: y[i] = a*x[i] + y[i], i in 0..64, strided across
; every logical processor.
;   hirata run examples/asm/saxpy.s --slots 4 --dump 3000..3008
.data
.org 500
aconst: .float 2.5
.org 2000
x: .float 0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75
   .float 2.0, 2.25, 2.5, 2.75, 3.0, 3.25, 3.5, 3.75
   .float 4.0, 4.25, 4.5, 4.75, 5.0, 5.25, 5.5, 5.75
   .float 6.0, 6.25, 6.5, 6.75, 7.0, 7.25, 7.5, 7.75
   .float 8.0, 8.25, 8.5, 8.75, 9.0, 9.25, 9.5, 9.75
   .float 10.0, 10.25, 10.5, 10.75, 11.0, 11.25, 11.5, 11.75
   .float 12.0, 12.25, 12.5, 12.75, 13.0, 13.25, 13.5, 13.75
   .float 14.0, 14.25, 14.5, 14.75, 15.0, 15.25, 15.5, 15.75
.org 3000
y: .space 64
.text
.entry main
main:
    lf   f1, 500(r0)     ; a
    fastfork
    lpid r1
    nlp  r2
    mv   r3, r1
loop:
    slt  r4, r3, #64
    beq  r4, #0, done
    lf   f2, 2000(r3)    ; x[i]
    lf   f3, 3000(r3)    ; y[i]
    fmul f2, f1, f2
    fadd f3, f2, f3
    sf   f3, 3000(r3)
    add  r3, r3, r2
    j    loop
done:
    halt
