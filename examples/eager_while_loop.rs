//! Eager execution of a sequential `while` loop (§2.3.3, Figure 7):
//! the linked-list traversal of Figure 6 parallelised across logical
//! processors with queue registers, `chgpri` acknowledgement, and
//! `killothers` on exit — the loop the paper says vector and VLIW
//! machines cannot parallelise.
//!
//! ```text
//! cargo run --release --example eager_while_loop
//! ```

use hirata::sim::{Config, Machine};
use hirata::workloads::linked_list::{
    eager_program, reference, sequential_program, ListShape, RESULT_ADDR,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shape = ListShape { nodes: 120, break_at: Some(119) };
    let (iterations, expected_tmp) = reference(shape);
    println!(
        "Figure 6 loop: {} nodes, break at node {:?} -> {iterations} iterations\n",
        shape.nodes, shape.break_at
    );

    let mut seq = Machine::new(Config::base_risc(), &sequential_program(shape))?;
    let seq_cycles = seq.run()?.cycles;
    let seq_per_iter = seq_cycles as f64 / iterations as f64;
    println!("sequential (base RISC): {seq_per_iter:.2} cycles/iteration (paper: 56)");

    let program = eager_program(shape);
    println!(
        "\n{:>6} {:>12} {:>9} {:>8} {:>7}",
        "slots", "cycles/iter", "speed-up", "killed", "paper"
    );
    for slots in [2usize, 3, 4, 6, 8] {
        let mut m = Machine::new(Config::multithreaded(slots), &program)?;
        let stats = m.run()?.clone();
        // The breaking thread's gated store must match the reference.
        assert_eq!(
            m.memory().read_f64(RESULT_ADDR)?,
            expected_tmp.expect("this shape breaks"),
            "eager break result"
        );
        let per_iter = stats.cycles as f64 / iterations as f64;
        let paper = match slots {
            2 => "32.5",
            3 => "21.67",
            4 => "17",
            _ => "-",
        };
        println!(
            "{slots:>6} {per_iter:>12.2} {:>9.2} {:>8} {:>7}",
            seq_per_iter / per_iter,
            stats.threads_killed,
            paper
        );
    }
    println!(
        "\nThe speed-up saturates once the loop-carried `ptr = ptr->next`\nrecurrence — not thread count — bounds throughput (§3.5)."
    );
    Ok(())
}
