//! The kernel-language compiler: write a doall kernel as source text,
//! compile it, schedule it with the §2.3.2 strategies, and run it on
//! machines of growing width.
//!
//! ```text
//! cargo run --release --example kernel_compiler
//! ```

use std::collections::BTreeMap;

use hirata::kernelc::compile;
use hirata::sched::Strategy;
use hirata::sim::{Config, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        // A damped 3-point stencil.
        const w = 0.25;
        array out at 1000;
        array v   at 2000;
        kernel smooth(k) {
            let left  = v[k];
            let mid   = v[k + 1];
            let right = v[k + 2];
            out[k] = mid + w * (left - 2.0 * mid + right);
        }
    ";
    let kernel = compile(source)?;
    println!("compiled `{}` — {} body instructions:", kernel.name(), kernel.body().len());
    for inst in kernel.body() {
        println!("    {inst}");
    }

    let n = 128;
    let mut inputs = BTreeMap::new();
    inputs
        .insert("v".to_owned(), (0..n + 2).map(|i| ((i % 17) as f64) * 0.5).collect::<Vec<f64>>());
    let reference = &kernel.reference(n, &inputs)["out"];

    println!("\n{:>22} {:>7} {:>10}", "configuration", "slots", "cycles");
    for strategy in [Strategy::None, Strategy::ListA] {
        for slots in [1usize, 2, 4, 8] {
            let program = kernel.program(n, &inputs, strategy);
            let mut machine = Machine::new(Config::multithreaded(slots), &program)?;
            let cycles = machine.run()?.cycles;
            // Results must match the reference evaluator exactly.
            for (i, want) in reference.iter().enumerate() {
                assert_eq!(machine.memory().read_f64(1000 + i as u64)?, *want);
            }
            println!("{:>22} {slots:>7} {cycles:>10}", format!("{strategy:?}"));
        }
    }
    println!("\nevery configuration computed the identical stencil, bit for bit");
    Ok(())
}
