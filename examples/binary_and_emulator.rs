//! Tour of the toolchain around the simulator: assemble a program,
//! serialise it through the 64-bit binary encoding, disassemble it
//! back, fast-check it on the architectural emulator, then run it on
//! the cycle-level machine and compare.
//!
//! ```text
//! cargo run --release --example binary_and_emulator
//! ```

use hirata::asm::assemble;
use hirata::isa::{decode_program, encode_program, Program};
use hirata::sim::{Config, Emulator, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(
        "
        .equ N, 12
        .data
        tbl: .float 0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5, 9.5, 10.5, 11.5
        .text
        fastfork
        lpid r1
        nlp  r2
        lif  f1, #0.0
        mv   r3, r1
    loop:
        slt  r4, r3, #N
        beq  r4, #0, done
        lf   f2, tbl(r3)
        fadd f1, f1, f2
        add  r3, r3, r2
    j    loop
    done:
        sf   f1, 100(r1)
        halt
    ",
    )?;

    // 1. Binary round trip.
    let words = encode_program(&program.insts)?;
    println!(
        "{} instructions encode into {} 64-bit words ({} two-word forms)",
        program.len(),
        words.len(),
        words.len() - program.len()
    );
    let decoded = decode_program(&words)?;
    assert_eq!(decoded, program.insts, "binary round trip must be exact");
    let reconstituted = Program { insts: decoded, ..program.clone() };

    // 2. Architectural emulator (no timing) as the fast checker.
    let emu = Emulator::execute(&reconstituted, 4, 1 << 20, 1_000_000)?;
    println!("emulator: {} instructions retired", emu.instructions);

    // 3. Cycle-level machine; memory images must agree exactly.
    let mut machine = Machine::new(Config::multithreaded(4), &reconstituted)?;
    let stats = machine.run()?.clone();
    println!("machine:  {} cycles, IPC {:.2}", stats.cycles, stats.ipc());
    let total_emu: f64 = (0..4).map(|lp| emu.memory.read_f64(100 + lp).unwrap()).sum();
    let total_mach: f64 = (0..4).map(|lp| machine.memory().read_f64(100 + lp).unwrap()).sum();
    assert_eq!(total_emu, total_mach, "golden model and machine agree");
    println!("sum over all logical processors: {total_mach} (expected 72)");
    assert_eq!(total_mach, 72.0);
    Ok(())
}
