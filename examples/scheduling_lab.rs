//! Static-scheduling laboratory (§2.3.2, Table 4): compare the
//! non-optimized, list-scheduled (A), and reservation+standby-table
//! (B) versions of Livermore Kernel 1 across machine widths, and show
//! the schedules themselves.
//!
//! ```text
//! cargo run --release --example scheduling_lab
//! ```

use hirata::sched::{apply_strategy, Strategy};
use hirata::sim::{Config, Machine};
use hirata::workloads::livermore::{kernel1_body, kernel1_program, kernel1_reference, X_BASE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let body = kernel1_body();
    println!("Livermore Kernel 1 body — X(K) = Q + Y(K)*(R*Z(K+10) + T*Z(K+11))\n");
    let strategies = [
        ("non-optimized", Strategy::None),
        ("strategy A (list)", Strategy::ListA),
        ("strategy B (reservation+standby)", Strategy::ReservationB { threads: 4 }),
    ];
    for (name, strategy) in strategies {
        println!("{name}:");
        for inst in apply_strategy(&body, strategy) {
            println!("    {inst}");
        }
        println!();
    }

    let n = 256;
    let reference = kernel1_reference(n);
    println!("cycles per iteration, N = {n} (paper: 50 / 42 at one slot; floor 8):\n");
    println!("{:>6} {:>10} {:>11} {:>11}", "slots", "non-opt", "strategy A", "strategy B");
    for slots in [1usize, 2, 4, 6, 8] {
        let mut row = Vec::new();
        for strategy in [Strategy::None, Strategy::ListA, Strategy::ReservationB { threads: slots }]
        {
            let program = kernel1_program(n, strategy);
            let mut machine = Machine::new(Config::multithreaded(slots), &program)?;
            let stats = machine.run()?.clone();
            // Whatever the schedule, the numerics must be identical.
            for (k, want) in reference.iter().enumerate() {
                assert_eq!(machine.memory().read_f64(X_BASE as u64 + k as u64)?, *want);
            }
            row.push(stats.cycles as f64 / n as f64);
        }
        println!("{slots:>6} {:>10.2} {:>11.2} {:>11.2}", row[0], row[1], row[2]);
    }
    println!("\nThe floor is (3 loads + 1 store) x 2-cycle issue latency = 8 cycles\nper iteration on one load/store unit — exactly the paper's analysis.");
    Ok(())
}
