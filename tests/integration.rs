//! Cross-crate integration tests: assembly text through the scheduler
//! and simulator, with paper-shape assertions at test-friendly sizes.

use hirata::asm::assemble;
use hirata::isa::FuConfig;
use hirata::sched::Strategy;
use hirata::sim::{Config, Machine};
use hirata::workloads::linked_list::{self, ListShape};
use hirata::workloads::livermore;
use hirata::workloads::raytrace::{self, RayTraceParams};

fn cycles(config: Config, program: &hirata::isa::Program) -> u64 {
    let mut m = Machine::new(config, program).expect("machine builds");
    m.run().expect("program runs").cycles
}

#[test]
fn full_pipeline_asm_to_memory() {
    let program = assemble(
        "
        .data
        tbl: .word 3, 1, 4, 1, 5, 9, 2, 6
        .text
        fastfork
        lpid r1
        nlp  r2
        li   r3, #0
        mv   r4, r1
    loop:
        slt  r5, r4, #8
        beq  r5, #0, done
        lw   r6, tbl(r4)
        add  r3, r3, r6
        add  r4, r4, r2
        j    loop
    done:
        sw   r3, 100(r1)
        halt
    ",
    )
    .expect("assembles");
    for slots in [1usize, 2, 4] {
        let mut m = Machine::new(Config::multithreaded(slots), &program).unwrap();
        m.run().unwrap();
        let total: i64 = (0..slots).map(|lp| m.memory().read_i64(100 + lp as u64).unwrap()).sum();
        assert_eq!(total, 3 + 1 + 4 + 1 + 5 + 9 + 2 + 6, "{slots} slots");
    }
}

#[test]
fn table2_shape_speedups_grow_and_saturate() {
    let params = RayTraceParams { width: 8, height: 8, spheres: 6, seed: 42, shadows: true };
    let program = raytrace::raytrace_program(&params);
    let base = cycles(Config::base_risc(), &program);
    let one_ls: Vec<f64> = [2usize, 4, 8]
        .into_iter()
        .map(|s| base as f64 / cycles(Config::multithreaded(s), &program) as f64)
        .collect();
    assert!(one_ls[0] > 1.5, "2 slots must pay off: {one_ls:?}");
    assert!(one_ls[1] > one_ls[0] && one_ls[2] > one_ls[1], "monotone: {one_ls:?}");
    // Saturation: 4 -> 8 slots gains less than 2 -> 4 (one L/S unit).
    assert!(
        one_ls[2] / one_ls[1] < one_ls[1] / one_ls[0],
        "diminishing returns expected: {one_ls:?}"
    );
    // The second load/store unit relieves the bottleneck at 8 slots.
    let two_ls_8 = base as f64
        / cycles(Config::multithreaded(8).with_fu(FuConfig::paper_two_ls()), &program) as f64;
    assert!(two_ls_8 > one_ls[2] * 1.1, "2 L/S units must help at 8 slots");
}

#[test]
fn table3_shape_threads_beat_width_at_equal_budget() {
    let params = RayTraceParams { width: 8, height: 8, spheres: 4, seed: 11, shadows: false };
    let program = raytrace::raytrace_program(&params);
    let speed = |d: usize, s: usize| {
        let base = cycles(Config::base_risc(), &program);
        base as f64 / cycles(Config::hybrid(d, s), &program) as f64
    };
    assert!(speed(1, 4) > speed(2, 2));
    assert!(speed(2, 2) > speed(4, 1));
}

#[test]
fn table4_shape_floor_and_strategy_gain() {
    let n = 96;
    let per_iter = |slots: usize, strategy: Strategy| {
        let program = livermore::kernel1_program(n, strategy);
        cycles(Config::multithreaded(slots), &program) as f64 / n as f64
    };
    let naive1 = per_iter(1, Strategy::None);
    let a1 = per_iter(1, Strategy::ListA);
    assert!(a1 < naive1, "strategy A helps a single thread: {a1} vs {naive1}");
    let b8 = per_iter(8, Strategy::ReservationB { threads: 8 });
    assert!(b8 >= 8.0, "memory floor: {b8}");
    assert!(b8 < 0.3 * naive1, "eight slots approach the floor: {b8} vs {naive1}");
}

#[test]
fn table5_shape_eager_execution_saturates_on_recurrence() {
    let shape = ListShape { nodes: 80, break_at: Some(79) };
    let iters = shape.iterations() as f64;
    let seq = cycles(Config::base_risc(), &linked_list::sequential_program(shape)) as f64 / iters;
    let eager = linked_list::eager_program(shape);
    let at = |s: usize| cycles(Config::multithreaded(s), &eager) as f64 / iters;
    let (two, four, eight) = (at(2), at(4), at(8));
    assert!(two < seq, "eager wins at 2 slots: {two} vs {seq}");
    assert!(four < two, "more slots help: {four} vs {two}");
    // Past the recurrence limit extra slots do nothing (saturation).
    assert!((eight - four).abs() / four < 0.15, "saturated: {four} vs {eight}");
}

#[test]
fn scheduling_never_changes_results() {
    let n = 37;
    let expected = livermore::kernel1_reference(n);
    for strategy in [Strategy::ListA, Strategy::ReservationB { threads: 3 }] {
        let program = livermore::kernel1_program(n, strategy);
        let mut m = Machine::new(Config::multithreaded(3), &program).unwrap();
        m.run().unwrap();
        for (k, want) in expected.iter().enumerate() {
            assert_eq!(
                m.memory().read_f64(livermore::X_BASE as u64 + k as u64).unwrap(),
                *want,
                "k={k}, {strategy:?}"
            );
        }
    }
}

#[test]
fn raytracer_image_bit_exact_on_a_wide_machine() {
    let params = RayTraceParams { width: 8, height: 6, spheres: 5, seed: 99, shadows: true };
    let program = raytrace::raytrace_program(&params);
    let expected = raytrace::reference_image(&params);
    let mut m =
        Machine::new(Config::multithreaded(8).with_fu(FuConfig::paper_two_ls()), &program).unwrap();
    m.run().unwrap();
    let got: Vec<i64> = (0..params.pixels())
        .map(|p| m.memory().read_i64(raytrace::IMAGE_BASE + p as u64).unwrap())
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn stats_are_consistent() {
    let params = RayTraceParams { width: 8, height: 4, spheres: 3, seed: 1, shadows: false };
    let program = raytrace::raytrace_program(&params);
    let mut m = Machine::new(Config::multithreaded(4), &program).unwrap();
    let stats = m.run().unwrap();
    assert_eq!(stats.instructions, stats.per_slot_issued.iter().sum::<u64>());
    let fu_total: u64 = stats.fu_invocations.iter().sum();
    assert!(fu_total <= stats.instructions);
    assert!(stats.ipc() > 0.0 && stats.ipc() <= 4.0);
    // Stall accounting covers all non-issuing slot-cycles:
    // slots x cycles = issued + stalled (each slot either issues >= 1
    // instruction or records exactly one stall per cycle). Issue
    // counts can exceed one per slot-cycle only when D > 1, so here
    // (D = 1) the identity is exact.
    assert_eq!(4 * stats.cycles, stats.instructions + stats.stalls.total());
}

#[test]
fn section_1_utilization_multiplication_claim() {
    // §1's motivating arithmetic: "assume that the utilization of the
    // busiest functional unit ... is about 30% because of the
    // instruction level dependency ... three processors could be
    // united into one, so that the utilization ... could be expected
    // to be improved nearly to 30x3 = 90%" (U = N x L / T). A loop
    // with two memory operations (issue latency 2) per ~13-cycle
    // iteration puts the load/store unit near 30% on one thread.
    use hirata::isa::FuClass;
    let src = "
        fastfork
        lpid r1
        nlp  r2
        li   r3, #0
        mv   r4, r1
    loop:
        lw   r5, 200(r4)
        lw   r6, 600(r4)
        lw   r8, 900(r4)
        add  r3, r3, r5
        add  r3, r3, r6
        add  r3, r3, r8
        add  r4, r4, r2
        slt  r7, r4, #300
        bne  r7, #0, loop
        sw   r3, 100(r1)
        halt
    ";
    let prog = hirata::asm::assemble(src).unwrap();
    let util = |slots: usize| {
        let mut m = Machine::new(Config::multithreaded(slots), &prog).unwrap();
        m.run().unwrap().utilization(FuClass::LoadStore)
    };
    let one = util(1);
    let three = util(3);
    assert!((20.0..42.0).contains(&one), "one-thread load/store utilization: {one}");
    assert!(
        three > 2.2 * one && three > 65.0,
        "three threads should roughly triple the unit's utilization: {one} -> {three}"
    );
}
