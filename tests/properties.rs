//! Property-based tests (proptest): the invariants that must hold for
//! *any* program, not just the curated workloads.
//!
//! * assembler/disassembler round-trip;
//! * timing models never change architectural results — a random
//!   straight-line program produces the same memory image on the base
//!   RISC, on any multithreaded width, on hybrids, and with or without
//!   standby stations;
//! * the §2.3.2 schedulers preserve program semantics for arbitrary
//!   blocks.

use hirata::asm::assemble;
use hirata::isa::{FReg, FpBinOp, FpUnOp, GReg, GSrc, Inst, IntOp, Program, Reg};
use hirata::sched::{apply_strategy, Strategy as SchedStrategy};
use hirata::sim::{Config, Machine};
use proptest::prelude::*;

/// Strategy for a random arithmetic/memory instruction over a bounded
/// register pool and a bounded scratch-memory window. All inputs are
/// legal: uninitialized registers read as zero, and every address
/// stays in `0..64`.
fn arb_inst() -> impl Strategy<Value = Inst> {
    let greg = (0u8..12).prop_map(GReg);
    let freg = (0u8..12).prop_map(FReg);
    let gsrc =
        prop_oneof![(0u8..12).prop_map(|n| GSrc::Reg(GReg(n))), (-64i64..64).prop_map(GSrc::Imm),];
    let int_op = prop::sample::select(IntOp::ALL.to_vec());
    let fp_op = prop::sample::select(FpBinOp::ALL.to_vec());
    let fp_un = prop::sample::select(FpUnOp::ALL.to_vec());
    prop_oneof![
        4 => (int_op, greg.clone(), greg.clone(), gsrc)
            .prop_map(|(op, rd, rs, src2)| Inst::IntOp { op, rd, rs, src2 }),
        2 => (greg.clone(), -100i64..100).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        1 => (freg.clone(), -8i64..8)
            .prop_map(|(fd, v)| Inst::LiF { fd, imm: v as f64 * 0.25 }),
        3 => (fp_op, freg.clone(), freg.clone(), freg.clone())
            .prop_map(|(op, fd, fs, ft)| Inst::FpBin { op, fd, fs, ft }),
        1 => (fp_un, freg.clone(), freg.clone())
            .prop_map(|(op, fd, fs)| Inst::FpUn { op, fd, fs }),
        1 => (greg.clone(), freg.clone()).prop_map(|(rd, fs)| Inst::CvtFI { rd, fs }),
        1 => (freg.clone(), greg.clone()).prop_map(|(fd, rs)| Inst::CvtIF { fd, rs }),
        2 => (greg.clone(), 0i64..64)
            .prop_map(|(rd, off)| Inst::Load { dst: Reg::G(rd), base: GReg(0), off }),
        1 => (freg.clone(), 0i64..64)
            .prop_map(|(fd, off)| Inst::Load { dst: Reg::F(fd), base: GReg(0), off }),
        2 => (greg, 0i64..64).prop_map(|(rs, off)| Inst::Store {
            src: Reg::G(rs),
            base: GReg(0),
            off,
            gated: false
        }),
        1 => (freg, 0i64..64).prop_map(|(fs, off)| Inst::Store {
            src: Reg::F(fs),
            base: GReg(0),
            off,
            gated: false
        }),
    ]
}

fn arb_block() -> impl Strategy<Value = Vec<Inst>> {
    prop::collection::vec(arb_inst(), 1..40)
}

/// Like [`arb_block`], but with forward-only conditional branches
/// spliced in (forward-only means the program always terminates, so
/// the differential tests cover control flow too).
fn arb_branchy_block() -> impl Strategy<Value = Vec<Inst>> {
    (arb_block(), prop::collection::vec((0usize..40, 0usize..40, 0u8..12, -4i64..4), 0..6))
        .prop_map(|(mut block, branches)| {
            for (pos, skip, reg, cmp) in branches {
                let pos = pos % block.len();
                let len = block.len();
                let target = (pos + 1 + skip % (len - pos)).min(len);
                block.insert(
                    pos,
                    Inst::Branch {
                        cond: hirata::isa::BranchCond::Lt,
                        rs: GReg(reg),
                        src2: GSrc::Imm(cmp),
                        target: target as u32,
                    },
                );
            }
            // Later insertions shift earlier targets; clamp every
            // branch strictly forward so the program must terminate
            // (a target of `len` lands on the harness's store block).
            let n = block.len() as u32;
            for (i, inst) in block.iter_mut().enumerate() {
                if let Inst::Branch { target, .. } = inst {
                    *target = (*target).max(i as u32 + 1).min(n);
                }
            }
            block
        })
}

/// Wraps a block into a runnable program: the block, then stores of
/// the whole register pool into `64..88`, then halt.
fn harness(block: &[Inst]) -> Program {
    let mut insts = block.to_vec();
    for n in 0..12u8 {
        insts.push(Inst::Store {
            src: Reg::G(GReg(n)),
            base: GReg(0),
            off: 64 + n as i64,
            gated: false,
        });
        insts.push(Inst::Store {
            src: Reg::F(FReg(n)),
            base: GReg(0),
            off: 76 + n as i64,
            gated: false,
        });
    }
    insts.push(Inst::Halt);
    Program::from_insts(insts)
}

/// Final observable state: the scratch window plus the register dump.
fn observe(config: Config, program: &Program) -> Vec<u64> {
    let mut m = Machine::new(config, program).expect("machine builds");
    m.run().expect("program runs");
    m.memory().words()[..88].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assembler_round_trips_generated_instructions(block in arb_block()) {
        let program = harness(&block);
        let text: String =
            program.insts.iter().map(|i| format!("    {i}\n")).collect();
        let reparsed = assemble(&text).expect("rendered assembly parses");
        prop_assert_eq!(reparsed.insts, program.insts);
    }

    #[test]
    fn machine_shape_never_changes_results(block in arb_branchy_block()) {
        let program = harness(&block);
        let reference = observe(Config::base_risc(), &program);
        for config in [
            Config::multithreaded(1),
            Config::multithreaded(4),
            Config::multithreaded(2).with_standby(false),
            Config::multithreaded(2).with_private_fetch(true),
            Config::hybrid(2, 2),
            Config::hybrid(4, 1),
        ] {
            prop_assert_eq!(&observe(config, &program), &reference);
        }
    }

    #[test]
    fn schedulers_preserve_semantics(block in arb_block()) {
        let reference = observe(Config::base_risc(), &harness(&block));
        for strategy in [SchedStrategy::ListA, SchedStrategy::ReservationB { threads: 4 }] {
            let scheduled = apply_strategy(&block, strategy);
            prop_assert_eq!(scheduled.len(), block.len());
            let program = harness(&scheduled);
            prop_assert_eq!(&observe(Config::base_risc(), &program), &reference);
            prop_assert_eq!(&observe(Config::multithreaded(4), &program), &reference);
        }
    }

    #[test]
    fn cycle_counts_are_deterministic(block in arb_block()) {
        let program = harness(&block);
        let c1 = {
            let mut m = Machine::new(Config::multithreaded(4), &program).unwrap();
            m.run().unwrap().cycles
        };
        let c2 = {
            let mut m = Machine::new(Config::multithreaded(4), &program).unwrap();
            m.run().unwrap().cycles
        };
        prop_assert_eq!(c1, c2);
    }
}

/// Random list shapes for the eager-execution equivalence property.
fn arb_shape() -> impl Strategy<Value = hirata::workloads::linked_list::ListShape> {
    (1usize..24, proptest::option::of(0usize..24)).prop_map(|(nodes, brk)| {
        hirata::workloads::linked_list::ListShape { nodes, break_at: brk.map(|b| b % nodes) }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn eager_execution_always_matches_sequential_semantics(
        shape in arb_shape(),
        slots in 1usize..6,
    ) {
        use hirata::workloads::linked_list::{
            eager_program, reference, sequential_program, RESULT_ADDR,
        };
        let (_, tmp) = reference(shape);
        let mut seq =
            Machine::new(Config::base_risc(), &sequential_program(shape)).unwrap();
        seq.run().unwrap();
        let mut eager =
            Machine::new(Config::multithreaded(slots), &eager_program(shape)).unwrap();
        eager.run().unwrap();
        let want = tmp.unwrap_or(0.0);
        prop_assert_eq!(seq.memory().read_f64(RESULT_ADDR).unwrap(), want);
        prop_assert_eq!(eager.memory().read_f64(RESULT_ADDR).unwrap(), want);
    }

    #[test]
    fn assembler_never_panics_on_junk(text in "[ -~\n]{0,300}") {
        // Arbitrary printable input must produce Ok or a located error,
        // never a panic.
        let _ = hirata::asm::assemble(&text);
    }

    #[test]
    fn doacross_kernel5_matches_reference(n in 1usize..40, slots in 1usize..6) {
        use hirata::workloads::livermore::{kernel5_program, kernel5_reference, K5_X_BASE};
        let mut m =
            Machine::new(Config::multithreaded(slots), &kernel5_program(n)).unwrap();
        m.run().unwrap();
        let expected = kernel5_reference(n);
        for (i, want) in expected.iter().enumerate() {
            prop_assert_eq!(m.memory().read_f64(K5_X_BASE + i as u64).unwrap(), *want);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_encoding_round_trips(block in arb_block()) {
        use hirata::isa::{decode_program, encode_program};
        let program = harness(&block);
        let words = encode_program(&program.insts).expect("generated blocks encode");
        let back = decode_program(&words).expect("encoded words decode");
        prop_assert_eq!(back, program.insts);
    }

    #[test]
    fn emulator_and_machine_agree(block in arb_branchy_block()) {
        // The architectural emulator is the golden model: for
        // timing-independent programs the cycle-level machine must
        // produce the identical memory image.
        use hirata::sim::Emulator;
        let program = harness(&block);
        let emu = Emulator::execute(&program, 1, 1 << 20, 10_000_000).unwrap();
        let machine_view = observe(Config::multithreaded(1), &program);
        prop_assert_eq!(&emu.memory.words()[..88], machine_view.as_slice());
    }
}
