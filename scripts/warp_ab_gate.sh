#!/usr/bin/env bash
# Loop-warp A/B byte-identity gate.
#
# Usage:
#   scripts/warp_ab_gate.sh [path-to-hirata-binary]
#
# Runs every checked-in example at 1, 2, 4 and 8 thread slots twice —
# default configuration (loop-warp on) and `--no-warp` — and requires
# the *entire* `hirata run` output to match byte for byte: cycle
# count, instruction count, IPC, the functional-unit utilisation
# table, and a memory dump over the region the example writes. The
# warp engine's contract is that leaping is invisible; this gate
# enforces it on the real example programs with the real CLI, so a
# divergence that somehow slipped past the differential tests still
# cannot reach a release binary.
#
# The untraced `run` path is the one that actually leaps (a trace
# sink pins the engine to detection-only mode), so this compares
# genuinely warped output against genuinely stepped output.

set -euo pipefail

BIN="${1:-target/release/hirata}"
if [ ! -x "$BIN" ]; then
    echo "error: $BIN is not an executable (build with: cargo build --release -p hirata-cli)" >&2
    exit 2
fi

# Per-example memory dump range covering its stores (default: the low
# words every other example writes).
dump_range() {
    case "$(basename "$1")" in
        affine_stride.s) echo "65536..66560" ;; # banks at 65536*(lpid+1)
        *) echo "0..4096" ;;
    esac
}

fail=0
for ex in examples/asm/*.s; do
    range="$(dump_range "$ex")"
    for slots in 1 2 4 8; do
        a="$("$BIN" run "$ex" --slots "$slots" --dump "$range")"
        b="$("$BIN" run "$ex" --slots "$slots" --no-warp --dump "$range")"
        if [ "$a" != "$b" ]; then
            echo "FAIL: $ex at $slots slots diverges between warp and --no-warp:" >&2
            diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
            fail=1
        else
            echo "ok: $ex s$slots"
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "warp A/B gate FAILED" >&2
    exit 1
fi
echo "warp A/B gate passed: all examples byte-identical with and without loop-warp"
