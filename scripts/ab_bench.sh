#!/usr/bin/env bash
# Interleaved A/B benchmark harness.
#
# Usage:
#   scripts/ab_bench.sh <binary-A> <binary-B> [rounds] [points]
#
#   binary-A / binary-B   two builds of the throughput_check example
#                         (e.g. baseline worktree vs working tree)
#   rounds                paired rounds to run (default 11, odd keeps
#                         the median a real sample)
#   points                comma-separated grid keys passed to
#                         --points (default: the three EXPERIMENTS.md
#                         workloads at s=1 and s=8)
#
# Methodology: back-to-back block runs ("all of A, then all of B")
# fold any slow machine drift — thermal throttling, a background job
# starting halfway through — entirely into one side, which on a shared
# box routinely fabricates or hides several percent. This harness
# instead alternates the two binaries within every round (and swaps
# which one goes first on every other round, cancelling any fixed
# cost of being the round's opener), then forms the B/A ratio *within
# each round* so both sides of every ratio saw the same machine
# weather. The reported statistic per grid point is the MEDIAN of the
# per-round paired ratios — robust to a minority of disturbed rounds
# in a way a mean of ratios is not — plus the geometric mean of those
# medians across points as the headline.
#
# Each probe (`throughput_check --probe`) prints `key<TAB>cycles/sec`
# per point from a short minimum-of-runs estimate; repetition and
# pairing live here, not in the probe.

set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <binary-A> <binary-B> [rounds] [points]" >&2
    exit 2
fi

BIN_A="$1"
BIN_B="$2"
ROUNDS="${3:-11}"
POINTS="${4:-raytrace/s1,raytrace/s8,livermore-k1/s1,livermore-k1/s8,fig6-list/s1,fig6-list/s8}"

for bin in "$BIN_A" "$BIN_B"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin is not an executable file" >&2
        exit 2
    fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "A: $BIN_A" >&2
echo "B: $BIN_B" >&2
echo "points: $POINTS, rounds: $ROUNDS" >&2

for ((r = 1; r <= ROUNDS; r++)); do
    # Swap who opens the round so neither binary always pays or
    # pockets first-in-round effects (page cache, frequency ramp).
    if ((r % 2)); then order="A B"; else order="B A"; fi
    for side in $order; do
        if [ "$side" = A ]; then bin="$BIN_A"; else bin="$BIN_B"; fi
        "$bin" --probe --points "$POINTS" >"$TMP/${side}_$r.tsv"
    done
    echo "round $r/$ROUNDS done" >&2
done

median() {
    sort -n | awk '{ v[NR] = $1 }
        END {
            if (NR == 0) { print "nan"; exit 1 }
            if (NR % 2) print v[(NR + 1) / 2];
            else print (v[NR / 2] + v[NR / 2 + 1]) / 2;
        }'
}

printf '%-18s %12s %12s %14s\n' "point" "median A" "median B" "median B/A"

log_sum=0
n_points=0
while IFS=$'\t' read -r key _; do
    safe="${key//\//_}"
    : >"$TMP/ratios_$safe.txt"
    : >"$TMP/a_$safe.txt"
    : >"$TMP/b_$safe.txt"
    for ((r = 1; r <= ROUNDS; r++)); do
        a=$(awk -F'\t' -v k="$key" '$1 == k { print $2 }' "$TMP/A_$r.tsv")
        b=$(awk -F'\t' -v k="$key" '$1 == k { print $2 }' "$TMP/B_$r.tsv")
        if [ -z "$a" ] || [ -z "$b" ]; then
            echo "error: point $key missing from round $r output" >&2
            exit 1
        fi
        echo "$a" >>"$TMP/a_$safe.txt"
        echo "$b" >>"$TMP/b_$safe.txt"
        awk -v a="$a" -v b="$b" 'BEGIN { printf "%.6f\n", b / a }' >>"$TMP/ratios_$safe.txt"
    done
    med_ratio=$(median <"$TMP/ratios_$safe.txt")
    med_a=$(median <"$TMP/a_$safe.txt")
    med_b=$(median <"$TMP/b_$safe.txt")
    printf '%-18s %12.0f %12.0f %13.3fx\n' "$key" "$med_a" "$med_b" "$med_ratio"
    log_sum=$(awk -v s="$log_sum" -v r="$med_ratio" 'BEGIN { printf "%.9f", s + log(r) }')
    n_points=$((n_points + 1))
done <"$TMP/A_1.tsv"

geomean=$(awk -v s="$log_sum" -v n="$n_points" 'BEGIN { printf "%.3f", exp(s / n) }')
echo
echo "geomean of per-point median B/A ratios: ${geomean}x"
