#!/usr/bin/env bash
# Smoke-test the `hirata serve` daemon end to end:
#
#   1. boot the daemon on a random port with a fresh artifact store,
#   2. run the same Figure 6 sweep directly (`hirata lab`) and through
#      the daemon (`hirata submit`) and require byte-identical tables,
#   3. resubmit and require the answer to come from the artifact store,
#   4. shut the daemon down gracefully.
#
# Used by the `serve-smoke` CI job; also runnable locally.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=target/release/hirata
PROGRAM=examples/asm/fig6_while.s
PORT=$((20000 + RANDOM % 20000))
ADDR="127.0.0.1:${PORT}"
WORK=$(mktemp -d)

cleanup() {
    if [[ -n "${SERVE_PID:-}" ]] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

cargo build --release -p hirata-cli

"$BIN" serve --addr "$ADDR" --jobs 2 \
    --cache-dir "$WORK/cache" --trace-dir "$WORK/traces" &
SERVE_PID=$!

# Wait for the daemon to answer /stats.
for _ in $(seq 1 50); do
    if "$BIN" stats --addr "$ADDR" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
"$BIN" stats --addr "$ADDR" >/dev/null

# Direct vs remote: byte-identical tables.
"$BIN" lab "$PROGRAM" --slots 1,2,4 --ls 1,2 --jobs 2 --no-cache > "$WORK/direct.txt"
"$BIN" submit "$PROGRAM" --slots 1,2,4 --ls 1,2 --addr "$ADDR" > "$WORK/remote.txt"
diff -u "$WORK/direct.txt" "$WORK/remote.txt"
echo "serve-smoke: remote table matches direct run"

# Resubmission: answered from the artifact store, bytes unchanged.
"$BIN" submit "$PROGRAM" --slots 1,2,4 --ls 1,2 --addr "$ADDR" > "$WORK/cached.txt"
diff -u "$WORK/direct.txt" "$WORK/cached.txt"
"$BIN" stats --addr "$ADDR" | tee "$WORK/stats.txt" | grep -q '"jobs_cached": 6' \
    || { echo "serve-smoke: resubmission did not hit the artifact store"; \
         cat "$WORK/stats.txt"; exit 1; }
echo "serve-smoke: resubmission served from the artifact store"

# Interleaved mode agrees with pool mode (warm store, same numbers).
"$BIN" submit "$PROGRAM" --slots 1,2,4 --ls 1,2 --mode interleaved --addr "$ADDR" \
    > "$WORK/interleaved.txt"
# Only the header worker count differs between the two modes.
diff -u <(tail -n +2 "$WORK/direct.txt") <(tail -n +2 "$WORK/interleaved.txt")
echo "serve-smoke: interleaved mode matches"

"$BIN" shutdown --addr "$ADDR"
wait "$SERVE_PID"
echo "serve-smoke: daemon shut down cleanly"
