//! # hirata — a reproduction of the ISCA 1992 multithreaded elementary processor
//!
//! This crate is the facade over a full, from-scratch reproduction of
//! *"An Elementary Processor Architecture with Simultaneous
//! Instruction Issuing from Multiple Threads"* (Hirata, Kimura,
//! Nagamine, Mochizuki, Nishimura, Nakase, Nishizawa; ISCA 1992) —
//! the earliest complete proposal of what became simultaneous
//! multithreading (SMT).
//!
//! It re-exports the component crates:
//!
//! * [`isa`] — the RISC instruction set, functional-unit classes, and
//!   Table 1 latencies;
//! * [`asm`] — a two-pass assembler for a readable assembly syntax;
//! * [`mem`] — memory backing store and timing models (ideal cache,
//!   finite cache, DSM);
//! * [`sim`] — the cycle-level multithreaded processor (thread slots,
//!   schedule units with rotating priorities, standby stations, queue
//!   registers, context frames) and the baseline RISC;
//! * [`sched`] — the §2.3.2 static code schedulers (list scheduling
//!   and reservation + standby-table scheduling);
//! * [`kernelc`] — a small doall-kernel language compiling to the
//!   reproduced ISA (the paper's "compiler" for §2.3's loop regimes);
//! * [`workloads`] — the paper's workloads in the reproduced ISA (ray
//!   tracer, Livermore Kernel 1, the Figure 6 linked-list loop) with
//!   bit-exact Rust references.
//!
//! # Quick start
//!
//! ```
//! use hirata::asm::assemble;
//! use hirata::sim::{Config, Machine};
//!
//! // Two threads, forked in one cycle, each computing its own square.
//! let program = assemble("
//!     fastfork
//!     lpid r1
//!     mul  r2, r1, r1
//!     sw   r2, 100(r1)
//!     halt
//! ")?;
//! let mut machine = Machine::new(Config::multithreaded(2), &program)?;
//! let cycles = machine.run()?.cycles;
//! assert_eq!(machine.memory().read_i64(101)?, 1);
//! assert!(cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The experiment harness reproducing every table in the paper's §3
//! lives in the `repro` binary (`cargo run --release -p hirata-repro`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hirata_asm as asm;
pub use hirata_isa as isa;
pub use hirata_kernelc as kernelc;
pub use hirata_lab as lab;
pub use hirata_mem as mem;
pub use hirata_sched as sched;
pub use hirata_sim as sim;
pub use hirata_workloads as workloads;
